"""Deterministic fault injection for the CONGEST simulator.

The paper proves its bounds in a perfectly reliable synchronous model;
this module supplies the adversary that production networks actually
are.  A :class:`FaultInjector` plugs into :class:`~repro.sim.network.
Network` at delivery time and may, per in-flight message, **drop** it,
**duplicate** it, or **delay** it by a bounded number of rounds; it may
also **crash-stop** scheduled nodes at the start of a scheduled round.

Everything is deterministic: decisions come from a ``random.Random``
seeded by :class:`FaultConfig.seed`, and the simulator examines
messages in a deterministic order, so a fixed seed always yields the
same faults.  Every injected fault is recorded as a :class:`FaultEvent`
in a :class:`FaultPlan`; :meth:`FaultInjector.replay` re-applies a
recorded plan verbatim, which is the contract the resilience tests and
benchmarks rely on (same plan in, same :class:`RunReport` out).

Scope notes:

* a message suffers at most one fault (the decision is a single draw);
* messages addressed to an already-crashed node vanish silently — the
  crash event itself is the recorded fault;
* model violations (oversized messages, congestion, ...) still raise:
  faults model the environment, not buggy algorithms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from .errors import FaultConfigError
from .metrics import RunMetrics
from .model import Envelope

#: Fault kinds, as recorded in :class:`FaultEvent.kind`.
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"
CRASH = "crash"

MESSAGE_FAULTS = (DROP, DUPLICATE, DELAY)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.

    For message faults ``node``/``target`` are the envelope's sender and
    receiver and ``seq`` is the envelope's position in that round's
    delivery scan (the replay key).  For crashes ``node`` is the crashed
    node, ``target`` is ``None`` and ``seq`` is ``-1``.  ``detail``
    carries the delay amount for :data:`DELAY` events, else ``0``.
    """

    round: int
    kind: str
    node: Any
    target: Any
    seq: int
    detail: int = 0


@dataclass
class FaultPlan:
    """The complete, replayable record of one run's injected faults."""

    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    def record(self, event: FaultEvent) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> List[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def __len__(self) -> int:
        return len(self.events)


def _normalize_crashes(crashes) -> Dict[Any, int]:
    if isinstance(crashes, Mapping):
        items = list(crashes.items())
    else:
        items = [tuple(pair) for pair in crashes]
    table: Dict[Any, int] = {}
    for node, round_number in items:
        if node in table:
            raise FaultConfigError(f"node {node!r} scheduled to crash twice")
        if round_number < 1:
            raise FaultConfigError(
                f"crash round for node {node!r} must be >= 1 "
                f"(round 0 is the on_start sweep), got {round_number}"
            )
        table[node] = int(round_number)
    return table


@dataclass
class FaultConfig:
    """Parameters of the fault adversary.

    Message-fault rates are probabilities per in-flight message and a
    single decision is drawn per message, so the rates must sum to at
    most 1.  ``crashes`` maps node -> round (or is an iterable of
    ``(node, round)`` pairs); the node crash-stops at the *start* of
    that round, before processing its inbox.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: int = 3
    crashes: Any = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.drop_rate + self.duplicate_rate + self.delay_rate > 1.0:
            raise FaultConfigError(
                "drop_rate + duplicate_rate + delay_rate must not exceed 1"
            )
        if self.max_delay < 1:
            raise FaultConfigError(
                f"max_delay must be >= 1, got {self.max_delay}"
            )
        self.crashes = _normalize_crashes(self.crashes)

    @property
    def has_message_faults(self) -> bool:
        return bool(self.drop_rate or self.duplicate_rate or self.delay_rate)


class FaultInjector:
    """Seeded fault adversary; one instance drives one ``Network``.

    The network calls :meth:`crashes_at` once at the start of every
    round and :meth:`deliveries` once per round on the batch of
    envelopes that would normally be delivered.  Both are no-ops when
    the configuration specifies no faults of that class, so an injector
    with an empty config reproduces the fault-free schedule exactly.
    """

    def __init__(self, config: Optional[FaultConfig] = None):
        self.config = config if config is not None else FaultConfig()
        self._script: Optional[Dict[Tuple[int, int], FaultEvent]] = None
        self._script_crashes: Dict[int, List[Any]] = {}
        self.reset()

    @classmethod
    def replay(cls, plan: FaultPlan) -> "FaultInjector":
        """Build an injector that re-applies ``plan``'s faults verbatim."""
        injector = cls(FaultConfig(seed=plan.seed))
        injector._source_events = list(plan.events)
        injector.reset()
        return injector

    _source_events: Optional[List[FaultEvent]] = None

    def reset(self) -> None:
        """Forget all run state (called by ``Network.setup``)."""
        self._rng = random.Random(self.config.seed)
        self.plan = FaultPlan(seed=self.config.seed)
        self._pending: Dict[int, List[Envelope]] = {}
        self.crashed: Set[Any] = set()
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        if self._source_events is not None:
            self._script = {}
            self._script_crashes = {}
            for event in self._source_events:
                if event.kind == CRASH:
                    self._script_crashes.setdefault(event.round, []).append(
                        event.node
                    )
                else:
                    self._script[(event.round, event.seq)] = event

    # ------------------------------------------------------------------
    # Hooks called by Network.step()
    # ------------------------------------------------------------------
    def crashes_at(self, round_number: int) -> List[Any]:
        """Crash-stop the nodes scheduled for this round; return them."""
        if self._script is not None or self._script_crashes:
            nodes = list(self._script_crashes.get(round_number, []))
        else:
            nodes = sorted(
                (v for v, r in self.config.crashes.items() if r == round_number),
                key=str,
            )
        for node in nodes:
            self.crashed.add(node)
            self.plan.record(FaultEvent(round_number, CRASH, node, None, -1))
        return nodes

    def deliveries(
        self, outbox: List[Envelope], round_number: int
    ) -> List[Envelope]:
        """Apply message faults to ``outbox``; return what arrives now.

        The result also includes previously delayed envelopes that
        mature this round.  Matured envelopes are not faulted again.
        """
        deliver: List[Envelope] = list(self._pending.pop(round_number, ()))
        for seq, envelope in enumerate(outbox):
            decision = self._decide(round_number, seq, envelope)
            if decision is None:
                deliver.append(envelope)
                continue
            kind, amount = decision
            if kind == DROP:
                self.dropped += 1
            elif kind == DUPLICATE:
                self.duplicated += 1
                deliver.append(envelope)
                deliver.append(envelope)
            else:  # DELAY
                self.delayed += 1
                self._pending.setdefault(round_number + amount, []).append(
                    envelope
                )
        return deliver

    def has_pending(self) -> bool:
        """True while delayed messages are still in flight."""
        return bool(self._pending)

    # ------------------------------------------------------------------
    def _decide(
        self, round_number: int, seq: int, envelope: Envelope
    ) -> Optional[Tuple[str, int]]:
        if self._script is not None:
            event = self._script.get((round_number, seq))
            if event is None:
                return None
            if event.node != envelope.sender or event.target != envelope.receiver:
                raise FaultConfigError(
                    f"replay mismatch at round {round_number} seq {seq}: plan "
                    f"recorded {event.node}->{event.target} but the run "
                    f"produced {envelope.sender}->{envelope.receiver}; replay "
                    f"requires the identical program and seed"
                )
            self.plan.record(event)
            return event.kind, event.detail
        config = self.config
        if not config.has_message_faults:
            return None
        draw = self._rng.random()
        threshold = config.drop_rate
        if draw < threshold:
            kind, amount = DROP, 0
        elif draw < threshold + config.duplicate_rate:
            kind, amount = DUPLICATE, 0
        elif draw < threshold + config.duplicate_rate + config.delay_rate:
            kind, amount = DELAY, self._rng.randint(1, config.max_delay)
        else:
            return None
        self.plan.record(
            FaultEvent(
                round_number, kind, envelope.sender, envelope.receiver, seq, amount
            )
        )
        return kind, amount


#: Per-node execution states reported by :class:`RunReport`.
STATE_HALTED = "halted"
STATE_CRASHED = "crashed"
STATE_RUNNING = "running"


@dataclass
class RunReport:
    """Structured outcome of a run with faults active.

    Returned by :meth:`Network.run` instead of bare metrics (and instead
    of an opaque :class:`RoundLimitExceeded`) so drivers can reason
    about partial executions: what was injected, who crashed, who never
    terminated, and what the run cost.
    """

    metrics: RunMetrics
    plan: FaultPlan
    node_states: Dict[Any, str]
    completed: bool
    error: Optional[str] = None

    # -- conveniences mirroring RunMetrics ------------------------------
    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def all_halted(self) -> bool:
        return self.metrics.all_halted

    def crashed(self) -> Tuple[Any, ...]:
        return tuple(
            sorted(
                (v for v, s in self.node_states.items() if s == STATE_CRASHED),
                key=str,
            )
        )

    def survivors(self) -> Tuple[Any, ...]:
        return tuple(
            sorted(
                (v for v, s in self.node_states.items() if s != STATE_CRASHED),
                key=str,
            )
        )

    def running(self) -> Tuple[Any, ...]:
        """Nodes that neither halted nor crashed — stuck or abandoned."""
        return tuple(
            sorted(
                (v for v, s in self.node_states.items() if s == STATE_RUNNING),
                key=str,
            )
        )

    def summary(self) -> str:
        """Human-readable multi-line digest (used by the CLI)."""
        m = self.metrics
        states = {
            STATE_HALTED: 0,
            STATE_CRASHED: 0,
            STATE_RUNNING: 0,
        }
        for state in self.node_states.values():
            states[state] += 1
        lines = [
            f"completed: {self.completed}"
            + (f"  ({self.error})" if self.error else ""),
            f"rounds: {m.rounds}  messages: {m.messages} "
            f"({m.total_words} words)",
            f"faults: dropped={m.dropped_messages} "
            f"duplicated={m.duplicated_messages} "
            f"delayed={m.delayed_messages} crashed={m.crashed_nodes}",
            f"nodes: halted={states[STATE_HALTED]} "
            f"crashed={states[STATE_CRASHED]} "
            f"running={states[STATE_RUNNING]}",
        ]
        if states[STATE_RUNNING]:
            lines.append(f"stuck: {list(self.running())}")
        return "\n".join(lines)
