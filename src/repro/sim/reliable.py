"""Reliable delivery on top of a faulty network: ack + retransmit.

:class:`ReliableProgram` hosts an ordinary :class:`~repro.sim.program.
NodeProgram` and gives it exactly-once, in-order per-edge delivery over
a lossy channel.  The inner program is constructed against a
:class:`ReliableContext` whose sends are captured into per-neighbour
queues; the wrapper runs a stop-and-wait protocol per edge:

* each application message is framed ``("RDT", seq, ack, *payload)``
  with a cumulative piggybacked ack for the reverse direction;
* an unacknowledged frame is retransmitted every ``timeout`` rounds, at
  most ``max_retries`` times; exhausting the budget marks the neighbour
  as unreachable (``output["reliable_gave_up"]``) — the bounded-retry
  rule that lets nodes *detect* non-termination instead of hanging;
* pure acknowledgements travel as ``("RACK", ack)`` when the channel
  would otherwise be idle;
* duplicates (from the adversary or from spurious retransmits) are
  discarded by sequence number, so the inner program sees each message
  exactly once.

CONGEST compliance: the wrapper emits at most one frame per edge per
round (retransmissions occupy the same one-message budget as fresh
sends) and the frame header is a constant :data:`RELIABLE_HEADER_WORDS`
words — sequence numbers are bounded by the round count, hence still
``O(log n)`` bits for polynomially long runs.  Create the hosting
network with ``word_limit=base + RELIABLE_HEADER_WORDS`` to give inner
payloads their usual budget.

The wrapper changes *timing*, not content: messages may arrive rounds
late, so inner programs must be event-driven (fire on message arrival,
like the BFS/echo/convergecast family) rather than slot-counted
(``ScriptedProgram`` protocols that rely on "exactly 2^i + 1 rounds
later" alignment degrade under retransmission delays).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from .errors import NotANeighbor
from .model import Envelope
from .program import Context, NodeProgram

#: Words the wrapper adds to every frame: tag, sequence number, ack.
RELIABLE_HEADER_WORDS = 3

#: Rounds to wait for an ack before retransmitting.  The fault-free
#: round trip is 2 rounds (frame out, ack back), so anything >= 3 avoids
#: spurious retransmissions on a clean channel.
DEFAULT_TIMEOUT = 4

#: Retransmissions per frame before declaring the neighbour unreachable.
DEFAULT_MAX_RETRIES = 8

_DATA = "RDT"
_ACK = "RACK"


class _ReliableShim:
    """Stands in for the network inside the inner program's context.

    Captures the inner program's sends into the host's queues and
    forwards round queries to the real network, so ``ctx.round`` keeps
    working inside the wrapped program.
    """

    __slots__ = ("_host",)

    def __init__(self, host: "ReliableProgram"):
        self._host = host

    @property
    def current_round(self) -> int:
        return self._host.ctx._network.current_round

    def _enqueue(self, sender, receiver, payload) -> None:
        self._host._queue_send(receiver, payload)


class ReliableContext(Context):
    """The context handed to a program hosted by :class:`ReliableProgram`.

    Identical surface to :class:`~repro.sim.program.Context`; the only
    difference is that sends are buffered for reliable delivery instead
    of hitting the wire directly.
    """

    def __init__(self, base: Context, host: "ReliableProgram"):
        super().__init__(
            base.node, base.neighbors, base.edge_weights, base.n,
            _ReliableShim(host),
        )


class _Outstanding:
    """One in-flight (sent, unacknowledged) frame on an edge."""

    __slots__ = ("seq", "body", "sent_round", "attempts")

    def __init__(self, seq: int, body: Tuple[Any, ...], sent_round: int):
        self.seq = seq
        self.body = body
        self.sent_round = sent_round
        self.attempts = 0


class ReliableProgram(NodeProgram):
    """Host an inner program behind ack/retransmit channels.

    The inner program's ``output`` dictionary is shared with the
    wrapper, so drivers collect results exactly as they would from the
    unwrapped program; the wrapper adds ``reliable_retransmissions``
    and ``reliable_gave_up`` entries.
    """

    def __init__(
        self,
        ctx: Context,
        inner_factory: Callable[[Context], NodeProgram],
        timeout: int = DEFAULT_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ):
        super().__init__(ctx)
        if timeout < 3:
            raise ValueError(
                f"timeout must be >= 3 rounds (the fault-free RTT is 2), "
                f"got {timeout}"
            )
        self.timeout = timeout
        self.max_retries = max_retries
        self.inner = inner_factory(ReliableContext(ctx, self))
        self.output = self.inner.output
        self.retransmissions = 0
        self.gave_up: Set[Any] = set()
        self._neighbor_set = frozenset(self.neighbors)
        self._queues: Dict[Any, Deque[Tuple[Any, ...]]] = {
            u: deque() for u in self.neighbors
        }
        self._next_seq: Dict[Any, int] = {u: 0 for u in self.neighbors}
        self._outstanding: Dict[Any, Optional[_Outstanding]] = {
            u: None for u in self.neighbors
        }
        self._recv_expected: Dict[Any, int] = {u: 0 for u in self.neighbors}
        self._recv_buffer: Dict[Any, Dict[int, Tuple[Any, ...]]] = {
            u: {} for u in self.neighbors
        }
        self._ack_pending: Set[Any] = set()

    # -- capture of inner sends -------------------------------------------
    def _queue_send(self, receiver, payload) -> None:
        if receiver not in self._neighbor_set:
            raise NotANeighbor(self.node, receiver)
        if receiver in self.gave_up:
            return  # unreachable neighbour; delivery already abandoned
        self._queues[receiver].append(tuple(payload))

    # -- event hooks --------------------------------------------------------
    def on_start(self) -> None:
        self.inner.on_start()
        self._flush()
        self._maybe_halt()

    def on_round(self, inbox: List[Envelope]) -> None:
        delivered: List[Tuple[Any, Tuple[Any, ...]]] = []
        for envelope in inbox:
            tag = envelope.tag()
            if tag == _DATA:
                seq, ack = envelope.payload[1], envelope.payload[2]
                body = tuple(envelope.payload[3:])
                self._handle_ack(envelope.sender, ack)
                self._handle_data(envelope.sender, seq, body, delivered)
            elif tag == _ACK:
                self._handle_ack(envelope.sender, envelope.payload[1])
        delivered.sort(key=lambda item: (str(item[0]), str(item[1])))
        inner_inbox = [
            Envelope(sender, self.node, body, self.round - 1)
            for sender, body in delivered
        ]
        if not self.inner.halted:
            self.inner.on_round(inner_inbox)
        self._flush()
        self._maybe_halt()

    # -- receive path -------------------------------------------------------
    def _handle_ack(self, sender, ack: int) -> None:
        outstanding = self._outstanding[sender]
        if outstanding is not None and outstanding.seq <= ack:
            self._outstanding[sender] = None

    def _handle_data(self, sender, seq, body, delivered) -> None:
        expected = self._recv_expected[sender]
        if seq == expected:
            delivered.append((sender, body))
            expected += 1
            buffered = self._recv_buffer[sender]
            while expected in buffered:
                delivered.append((sender, buffered.pop(expected)))
                expected += 1
            self._recv_expected[sender] = expected
        elif seq > expected:
            self._recv_buffer[sender][seq] = body
        # Duplicates (seq < expected) carry no data but still need a
        # re-ack: the sender is retransmitting because our ack was lost.
        self._ack_pending.add(sender)

    # -- send path ----------------------------------------------------------
    def _flush(self) -> None:
        """Emit at most one frame per neighbour for this round."""
        for u in self.neighbors:
            frame: Optional[Tuple[Any, ...]] = None
            outstanding = self._outstanding[u]
            if outstanding is not None:
                if self.round - outstanding.sent_round >= self.timeout:
                    if outstanding.attempts >= self.max_retries:
                        self._abandon(u)
                    else:
                        outstanding.attempts += 1
                        outstanding.sent_round = self.round
                        self.retransmissions += 1
                        frame = (
                            _DATA, outstanding.seq, self._ack_for(u),
                        ) + outstanding.body
            if frame is None and self._outstanding[u] is None and self._queues[u]:
                body = self._queues[u].popleft()
                seq = self._next_seq[u]
                self._next_seq[u] = seq + 1
                self._outstanding[u] = _Outstanding(seq, body, self.round)
                frame = (_DATA, seq, self._ack_for(u)) + body
            if frame is None and u in self._ack_pending:
                frame = (_ACK, self._ack_for(u))
            if frame is not None:
                self.send(u, *frame)
                self._ack_pending.discard(u)

    def _ack_for(self, u) -> int:
        return self._recv_expected[u] - 1

    def _abandon(self, u) -> None:
        self.gave_up.add(u)
        self._outstanding[u] = None
        self._queues[u].clear()
        self.output["reliable_gave_up"] = tuple(sorted(self.gave_up, key=str))

    # -- termination ----------------------------------------------------------
    def _maybe_halt(self) -> None:
        if not self.inner.halted:
            return
        if any(self._queues[u] for u in self.neighbors):
            return
        if any(self._outstanding[u] is not None for u in self.neighbors):
            return
        if self._ack_pending:
            return
        self.output["reliable_retransmissions"] = self.retransmissions
        self.output.setdefault("reliable_gave_up", ())
        self.halt()


def make_reliable(
    inner_factory: Callable[[Context], NodeProgram],
    timeout: int = DEFAULT_TIMEOUT,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> Callable[[Context], ReliableProgram]:
    """Wrap a program factory in :class:`ReliableProgram` channels."""

    def factory(ctx: Context) -> ReliableProgram:
        return ReliableProgram(
            ctx, inner_factory, timeout=timeout, max_retries=max_retries
        )

    return factory
