"""Synchronous CONGEST-model simulator (and an async engine + synchroniser α).

This package is the substrate on which every algorithm of the paper is
implemented and measured.  See DESIGN.md §3.
"""

from .errors import (
    ConfigurationError,
    CongestionViolation,
    FaultConfigError,
    HaltedNodeActed,
    MessageTooLarge,
    ModelViolation,
    NotANeighbor,
    RoundLimitExceeded,
    SimulationError,
    UnserializablePayload,
)
from .faults import (
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    RunReport,
)
from .metrics import PhaseBreakdown, RunMetrics
from .model import DEFAULT_WORD_LIMIT, Envelope, MessageStats, measure_words
from .network import DEFAULT_MAX_ROUNDS, SCHEDULING_MODES, Network
from .orchestrator import Orchestrator
from .program import Context, IdleProgram, NodeProgram, ScriptedProgram, split_by_tag
from .reliable import (
    RELIABLE_HEADER_WORDS,
    ReliableContext,
    ReliableProgram,
    make_reliable,
)
from .runner import (
    PARALLEL_BACKENDS,
    ParallelRunError,
    StagedRun,
    run_in_parallel,
)
from .trace import TraceEvent, TraceRecorder, traced
from .virtual import ContractedGraph, VirtualNetwork
from .events import AsyncContext, AsyncNetwork, AsyncNodeProgram
from .synchronizer import AlphaSynchronizerNode, run_synchronized

__all__ = [
    "AlphaSynchronizerNode",
    "AsyncContext",
    "AsyncNetwork",
    "AsyncNodeProgram",
    "CRASH",
    "ConfigurationError",
    "CongestionViolation",
    "ContractedGraph",
    "Context",
    "DEFAULT_MAX_ROUNDS",
    "DEFAULT_WORD_LIMIT",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "Envelope",
    "FaultConfig",
    "FaultConfigError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HaltedNodeActed",
    "IdleProgram",
    "MessageStats",
    "MessageTooLarge",
    "ModelViolation",
    "Network",
    "NodeProgram",
    "Orchestrator",
    "NotANeighbor",
    "PARALLEL_BACKENDS",
    "ParallelRunError",
    "PhaseBreakdown",
    "RELIABLE_HEADER_WORDS",
    "ReliableContext",
    "ReliableProgram",
    "RoundLimitExceeded",
    "RunMetrics",
    "SCHEDULING_MODES",
    "RunReport",
    "ScriptedProgram",
    "SimulationError",
    "StagedRun",
    "TraceEvent",
    "TraceRecorder",
    "UnserializablePayload",
    "VirtualNetwork",
    "make_reliable",
    "measure_words",
    "run_in_parallel",
    "run_synchronized",
    "split_by_tag",
    "traced",
]
