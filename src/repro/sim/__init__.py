"""Synchronous CONGEST-model simulator (and an async engine + synchroniser α).

This package is the substrate on which every algorithm of the paper is
implemented and measured.  See DESIGN.md §3.
"""

from .errors import (
    ConfigurationError,
    CongestionViolation,
    HaltedNodeActed,
    MessageTooLarge,
    ModelViolation,
    NotANeighbor,
    RoundLimitExceeded,
    SimulationError,
    UnserializablePayload,
)
from .metrics import PhaseBreakdown, RunMetrics
from .model import DEFAULT_WORD_LIMIT, Envelope, MessageStats, measure_words
from .network import DEFAULT_MAX_ROUNDS, Network
from .orchestrator import Orchestrator
from .program import Context, IdleProgram, NodeProgram, ScriptedProgram, split_by_tag
from .runner import StagedRun, run_in_parallel
from .trace import TraceEvent, TraceRecorder, traced
from .virtual import ContractedGraph, VirtualNetwork
from .events import AsyncContext, AsyncNetwork, AsyncNodeProgram
from .synchronizer import AlphaSynchronizerNode, run_synchronized

__all__ = [
    "AlphaSynchronizerNode",
    "AsyncContext",
    "AsyncNetwork",
    "AsyncNodeProgram",
    "ConfigurationError",
    "CongestionViolation",
    "ContractedGraph",
    "Context",
    "DEFAULT_MAX_ROUNDS",
    "DEFAULT_WORD_LIMIT",
    "Envelope",
    "HaltedNodeActed",
    "IdleProgram",
    "MessageStats",
    "MessageTooLarge",
    "ModelViolation",
    "Network",
    "NodeProgram",
    "Orchestrator",
    "NotANeighbor",
    "PhaseBreakdown",
    "RoundLimitExceeded",
    "RunMetrics",
    "ScriptedProgram",
    "SimulationError",
    "StagedRun",
    "TraceEvent",
    "TraceRecorder",
    "UnserializablePayload",
    "VirtualNetwork",
    "measure_words",
    "run_in_parallel",
    "run_synchronized",
    "split_by_tag",
    "traced",
]
