"""Node program API for the synchronous CONGEST simulator.

An algorithm is written as a subclass of :class:`NodeProgram`.  The
network instantiates one program per node and drives it round by round:

* ``on_start()`` runs once, in round 0, before any message is delivered.
* ``on_round(inbox)`` runs in every subsequent round with the messages
  sent to this node in the previous round (possibly empty).

Programs communicate only via ``self.send(neighbor, *fields)`` and keep
all state in instance attributes.  When a program is done it calls
``self.halt()``; a halted node receives no further events (the paper's
"terminated" nodes that must still relay are simply programs that do not
halt).

Results are exposed through the ``output`` dictionary, which drivers
collect after the run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from .model import Envelope


class Context:
    """Per-node view of the network, handed to a program at construction.

    The context deliberately exposes only information a real distributed
    node would have: its own identifier, its incident edges (with
    weights, if the graph is weighted), and ``n`` — the paper assumes
    nodes know ``n`` (or a polynomial upper bound) since message size is
    defined relative to it.
    """

    __slots__ = ("node", "neighbors", "edge_weights", "n", "_network")

    def __init__(self, node, neighbors, edge_weights, n, network):
        self.node = node
        self.neighbors: Tuple[Any, ...] = tuple(neighbors)
        self.edge_weights: Dict[Any, float] = dict(edge_weights)
        self.n: int = n
        self._network = network

    def weight(self, neighbor) -> float:
        """Weight of the incident edge to ``neighbor``."""
        return self.edge_weights[neighbor]

    @property
    def round(self) -> int:
        """The current round number (0 during ``on_start``)."""
        return self._network.current_round


class NodeProgram:
    """Base class for synchronous message-passing node programs."""

    def __init__(self, ctx: Context):
        self.ctx = ctx
        self.halted = False
        self.output: Dict[str, Any] = {}

    # -- identity conveniences -------------------------------------------
    @property
    def node(self):
        return self.ctx.node

    @property
    def neighbors(self) -> Tuple[Any, ...]:
        return self.ctx.neighbors

    @property
    def n(self) -> int:
        return self.ctx.n

    @property
    def round(self) -> int:
        return self.ctx.round

    # -- actions ----------------------------------------------------------
    def send(self, neighbor, *fields) -> None:
        """Send one message (a tuple of scalar fields) to a neighbour."""
        self.ctx._network._enqueue(self.node, neighbor, tuple(fields))

    def broadcast(self, *fields) -> None:
        """Send the same message to every neighbour."""
        for neighbor in self.neighbors:
            self.send(neighbor, *fields)

    def halt(self) -> None:
        """Stop participating; the node receives no further events."""
        self.halted = True

    # -- event hooks (override these) --------------------------------------
    def on_start(self) -> None:
        """Round-0 hook; may send messages."""

    def on_round(self, inbox: List[Envelope]) -> None:
        """Per-round hook; ``inbox`` holds last round's messages to us."""
        raise NotImplementedError


class ScriptedProgram(NodeProgram):
    """A node program written as a single generator.

    Subclasses implement :meth:`script` as a generator that sends
    messages and then ``inbox = yield``-s to wait for the next round.
    This keeps multi-phase protocols (the paper's algorithms are full of
    "exactly 2^i + 1 time units later ..." logic) readable and makes the
    lockstep alignment between nodes explicit: every node's script has
    the same yield structure.

    When the generator returns, the node halts automatically.
    """

    def on_start(self) -> None:
        self._script = self.script()
        try:
            next(self._script)
        except StopIteration:
            self.halt()

    def on_round(self, inbox: List[Envelope]) -> None:
        try:
            self._script.send(inbox)
        except StopIteration:
            self.halt()

    def script(self):
        """Generator body: ``inbox = yield`` waits one round."""
        raise NotImplementedError

    # -- scripting conveniences -------------------------------------------
    def wait_rounds(self, rounds: int):
        """Yield helper: idle for ``rounds`` rounds, discarding traffic.

        Usage: ``yield from self.wait_rounds(5)``.
        """
        for _ in range(rounds):
            yield


class IdleProgram(NodeProgram):
    """A program that does nothing and halts immediately (for testing)."""

    def on_start(self) -> None:
        self.halt()

    def on_round(self, inbox: List[Envelope]) -> None:  # pragma: no cover
        pass


def split_by_tag(inbox: Sequence[Envelope]) -> Dict[Any, List[Envelope]]:
    """Group an inbox by protocol tag (first payload field).

    Most programs in this repository multiplex several conceptual
    sub-protocols over the single per-edge channel; this helper keeps
    their ``on_round`` bodies readable.
    """
    groups: Dict[Any, List[Envelope]] = {}
    for envelope in inbox:
        groups.setdefault(envelope.tag(), []).append(envelope)
    return groups
