"""Node program API for the synchronous CONGEST simulator.

An algorithm is written as a subclass of :class:`NodeProgram`.  The
network instantiates one program per node and drives it round by round:

* ``on_start()`` runs once, in round 0, before any message is delivered.
* ``on_round(inbox)`` runs in every subsequent round with the messages
  sent to this node in the previous round (possibly empty).

Programs communicate only via ``self.send(neighbor, *fields)`` and keep
all state in instance attributes.  When a program is done it calls
``self.halt()``; a halted node receives no further events (the paper's
"terminated" nodes that must still relay are simply programs that do not
halt).

Results are exposed through the ``output`` dictionary, which drivers
collect after the run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from .model import Envelope


class Context:
    """Per-node view of the network, handed to a program at construction.

    The context deliberately exposes only information a real distributed
    node would have: its own identifier, its incident edges (with
    weights, if the graph is weighted), and ``n`` — the paper assumes
    nodes know ``n`` (or a polynomial upper bound) since message size is
    defined relative to it.
    """

    __slots__ = ("node", "neighbors", "edge_weights", "n", "_network")

    def __init__(self, node, neighbors, edge_weights, n, network):
        self.node = node
        self.neighbors: Tuple[Any, ...] = tuple(neighbors)
        self.edge_weights: Dict[Any, float] = dict(edge_weights)
        self.n: int = n
        self._network = network

    def weight(self, neighbor) -> float:
        """Weight of the incident edge to ``neighbor``."""
        return self.edge_weights[neighbor]

    @property
    def round(self) -> int:
        """The current round number (0 during ``on_start``)."""
        return self._network.current_round

    def request_wakeup(self, delay: int = 1) -> None:
        """Ask the scheduler to invoke this program ``delay`` rounds from
        now even if no message arrives (see docs/performance.md).

        Event-driven programs (``TICK_EVERY_ROUND = False``) are only
        invoked when a message lands in their inbox; a program that
        needs a *timed* action — a timeout, a phase boundary — requests
        an explicit wakeup instead of burning a sweep slot every round.
        Requesting a wakeup is idempotent per round and never *prevents*
        an invocation; programs that tick every round may call it freely
        (it is then a no-op).

        Hosted execution environments that tick their guest every round
        anyway (the reliable-channel wrapper, synchroniser α) accept and
        ignore the request.
        """
        if delay < 1:
            raise ValueError(f"wakeup delay must be >= 1 round, got {delay}")
        request = getattr(self._network, "request_wakeup", None)
        if request is not None:
            request(self.node, delay)


class NodeProgram:
    """Base class for synchronous message-passing node programs."""

    #: Scheduling contract (see docs/performance.md).  ``True`` — the
    #: default, and the opt-out for round-counting protocols — means the
    #: scheduler invokes ``on_round`` every round, delivered messages or
    #: not, exactly like a naive full sweep.  Purely *message-driven*
    #: programs (every action is a reaction to an inbox message; an
    #: empty-inbox round is a no-op) declare ``TICK_EVERY_ROUND = False``
    #: and are then invoked only when a message arrives or a requested
    #: wakeup (:meth:`Context.request_wakeup`) matures — which is what
    #: lets the engine do O(messages) work instead of O(n · rounds).
    #: The flag is an implementation hint with no model-visible effect:
    #: a correct message-driven program behaves identically either way
    #: (the equivalence suite in tests/sim/test_scheduler_equivalence.py
    #: enforces this for every flagged program in the repository).
    TICK_EVERY_ROUND = True

    def __init__(self, ctx: Context):
        self.ctx = ctx
        self.halted = False
        self.output: Dict[str, Any] = {}

    # -- identity conveniences -------------------------------------------
    @property
    def node(self):
        return self.ctx.node

    @property
    def neighbors(self) -> Tuple[Any, ...]:
        return self.ctx.neighbors

    @property
    def n(self) -> int:
        return self.ctx.n

    @property
    def round(self) -> int:
        return self.ctx.round

    # -- actions ----------------------------------------------------------
    def send(self, neighbor, *fields) -> None:
        """Send one message (a tuple of scalar fields) to a neighbour."""
        self.ctx._network._enqueue(self.node, neighbor, tuple(fields))

    def broadcast(self, *fields) -> None:
        """Send the same message to every neighbour."""
        for neighbor in self.neighbors:
            self.send(neighbor, *fields)

    def halt(self) -> None:
        """Stop participating; the node receives no further events."""
        self.halted = True

    def request_wakeup(self, delay: int = 1) -> None:
        """Schedule an ``on_round`` invocation ``delay`` rounds from now
        regardless of traffic (see :meth:`Context.request_wakeup`)."""
        self.ctx.request_wakeup(delay)

    # -- event hooks (override these) --------------------------------------
    def on_start(self) -> None:
        """Round-0 hook; may send messages."""

    def on_round(self, inbox: List[Envelope]) -> None:
        """Per-round hook; ``inbox`` holds last round's messages to us."""
        raise NotImplementedError


class ScriptedProgram(NodeProgram):
    """A node program written as a single generator.

    Subclasses implement :meth:`script` as a generator that sends
    messages and then ``inbox = yield``-s to wait for the next round.
    This keeps multi-phase protocols (the paper's algorithms are full of
    "exactly 2^i + 1 time units later ..." logic) readable and makes the
    lockstep alignment between nodes explicit: every node's script has
    the same yield structure.

    When the generator returns, the node halts automatically.

    Scripted programs default to ``TICK_EVERY_ROUND = True``: a script
    whose yield structure *is* its round counter (``wait_rounds``
    literally counts empty rounds) must be resumed every round.  A
    subclass may opt out with ``TICK_EVERY_ROUND = False`` **only** if
    its script derives slot numbers from ``self.round`` instead of
    counting resumes, and books a :meth:`~NodeProgram.request_wakeup`
    for every slot at which it must act on an empty inbox (see
    ``SimpleMSTProgram`` for the pattern).
    """

    def on_start(self) -> None:
        self._script = self.script()
        try:
            next(self._script)
        except StopIteration:
            self.halt()

    def on_round(self, inbox: List[Envelope]) -> None:
        try:
            self._script.send(inbox)
        except StopIteration:
            self.halt()

    def script(self):
        """Generator body: ``inbox = yield`` waits one round."""
        raise NotImplementedError

    # -- scripting conveniences -------------------------------------------
    def wait_rounds(self, rounds: int):
        """Yield helper: idle for ``rounds`` rounds, discarding traffic.

        Usage: ``yield from self.wait_rounds(5)``.
        """
        for _ in range(rounds):
            yield


class IdleProgram(NodeProgram):
    """A program that does nothing and halts immediately (for testing)."""

    def on_start(self) -> None:
        self.halt()

    def on_round(self, inbox: List[Envelope]) -> None:  # pragma: no cover
        pass


def split_by_tag(inbox: Sequence[Envelope]) -> Dict[Any, List[Envelope]]:
    """Group an inbox by protocol tag (first payload field).

    Most programs in this repository multiplex several conceptual
    sub-protocols over the single per-edge channel; this helper keeps
    their ``on_round`` bodies readable.
    """
    groups: Dict[Any, List[Envelope]] = {}
    for envelope in inbox:
        groups.setdefault(envelope.tag(), []).append(envelope)
    return groups
