"""Synchroniser α of Awerbuch, hosting synchronous programs on an
asynchronous network.

The paper's remark (§1.2): synchrony is assumed WLOG because "we can use
the simple synchronizer α of [A1] whose cost in an asynchronous network
is one message over each edge in each direction per round".

Protocol per pulse ``p`` at node ``v``:

1. ``v`` sends its pulse-``p`` payload messages, tagged ``("MSG", p, …)``.
2. Every payload message is acknowledged (``("ACK", p)``).
3. When all of ``v``'s pulse-``p`` messages are acknowledged, ``v`` is
   *safe* and announces ``("SAFE", p)`` to every neighbour.
4. When ``v`` is safe and has heard ``SAFE(p)`` from every neighbour, it
   advances to pulse ``p + 1``, delivering the buffered pulse-``p``
   payload messages to the hosted synchronous program.

A node whose hosted program has halted keeps announcing safety so its
neighbours can continue; the event loop stops once every hosted program
has halted.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .events import AsyncContext, AsyncNodeProgram, AsyncNetwork
from .model import Envelope
from .program import Context, NodeProgram


class _HostAdapter:
    """Presents the synchroniser to the hosted synchronous program as if
    it were a :class:`~repro.sim.network.Network`."""

    def __init__(self, host: "AlphaSynchronizerNode"):
        self._host = host

    @property
    def current_round(self) -> int:
        return self._host.pulse

    def _enqueue(self, sender, receiver, payload) -> None:
        self._host.queue_payload(receiver, payload)


class AlphaSynchronizerNode(AsyncNodeProgram):
    """One node of synchroniser α, hosting a synchronous program."""

    def __init__(self, ctx: AsyncContext, sync_factory: Callable[[Context], NodeProgram]):
        super().__init__(ctx)
        self.pulse = 0
        self._outgoing: List[Tuple[Any, tuple]] = []
        self._channels_used: Set[Any] = set()
        self._pending_acks = 0
        self._announced_safe = False
        self._safe_from: Dict[int, Set[Any]] = {}
        self._buffered: Dict[int, List[Envelope]] = {}
        adapter = _HostAdapter(self)
        sync_ctx = Context(ctx.node, ctx.neighbors, ctx.edge_weights, ctx.n, adapter)
        self.sync_program = sync_factory(sync_ctx)
        self.pulses_completed = 0
        #: Pulse count when the hosted program halted (the meaningful
        #: comparison against synchronous rounds; pulses after that are
        #: just trailing safety chatter while neighbours finish).
        self.pulses_at_halt: Optional[int] = None

    # -- hosted-program send path ---------------------------------------
    def queue_payload(self, receiver, payload) -> None:
        if receiver in self._channels_used:
            from .errors import CongestionViolation

            raise CongestionViolation(self.node, receiver, self.pulse)
        self._channels_used.add(receiver)
        self._outgoing.append((receiver, payload))

    # -- synchroniser protocol -------------------------------------------
    def on_start(self) -> None:
        self.sync_program.on_start()
        self._dispatch_pulse_messages()

    def _dispatch_pulse_messages(self) -> None:
        outgoing, self._outgoing = self._outgoing, []
        self._channels_used = set()
        self._pending_acks = len(outgoing)
        self._announced_safe = False
        for receiver, payload in outgoing:
            self.send(receiver, "MSG", self.pulse, payload)
        if self._pending_acks == 0:
            self._announce_safe()

    def _announce_safe(self) -> None:
        self._announced_safe = True
        for neighbor in self.neighbors:
            self.send(neighbor, "SAFE", self.pulse)
        self._try_advance()

    def on_message(self, sender, payload) -> None:
        tag = payload[0]
        if tag == "MSG":
            _tag, pulse, inner = payload
            self._buffered.setdefault(pulse, []).append(
                Envelope(sender, self.node, inner, pulse)
            )
            self.send(sender, "ACK", pulse)
        elif tag == "ACK":
            self._pending_acks -= 1
            if self._pending_acks == 0 and not self._announced_safe:
                self._announce_safe()
        elif tag == "SAFE":
            _tag, pulse = payload
            self._safe_from.setdefault(pulse, set()).add(sender)
            self._try_advance()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown synchroniser message {payload!r}")

    def _try_advance(self) -> None:
        while (
            self._announced_safe
            and self._safe_from.get(self.pulse, set()) >= set(self.neighbors)
        ):
            delivered = self._buffered.pop(self.pulse, [])
            delivered.sort(key=lambda e: str((e.sender, e.payload)))
            self.pulse += 1
            self.pulses_completed += 1
            if not self.sync_program.halted:
                self.sync_program.on_round(delivered)
            if self.sync_program.halted and self.pulses_at_halt is None:
                self.pulses_at_halt = self.pulse
            self.output = self.sync_program.output
            # A hosted program may halt in the same call that queued its
            # final messages (e.g. a root halting right after its last
            # broadcast); those must still go out.  Once halted it is no
            # longer invoked, so no further payload traffic arises — the
            # synchroniser merely keeps announcing safety for ever-quiet
            # pulses so neighbours can continue.
            self._dispatch_pulse_messages()

    @property
    def hosted_halted(self) -> bool:
        return self.sync_program.halted


def run_synchronized(
    graph,
    sync_factory: Callable[[Context], NodeProgram],
    seed: int = 0,
    max_events: int = 10_000_000,
) -> Tuple[AsyncNetwork, float]:
    """Run a synchronous program on an async network under synchroniser α.

    Returns the async network (programs expose ``sync_program`` and
    ``pulses_completed``) and the virtual completion time.
    """
    network = AsyncNetwork(graph, seed=seed)

    def factory(ctx: AsyncContext) -> AlphaSynchronizerNode:
        return AlphaSynchronizerNode(ctx, sync_factory)

    def all_hosted_halted(net: AsyncNetwork) -> bool:
        return all(
            isinstance(p, AlphaSynchronizerNode) and p.hosted_halted
            for p in net.programs.values()
        )

    completion = network.run(factory, max_events=max_events, stop_when=all_hosted_halted)
    return network, completion
