"""Virtual (contracted) networks over cluster partitions.

Several of the paper's algorithms run on a *contracted* tree in which
every cluster of the current partition acts as a single node.  The paper
sketches the distributed implementation (§3.2.1): "appoint for each
cluster a center node, that will from now on perform the operations for
the whole cluster, while the other nodes in the cluster will just serve
as links".  One round of the contracted algorithm then costs time
proportional to the cluster diameter — the center must reach the cluster
boundary and back.  Section 3.2.2 charges exactly this slowdown:
"its distributed implementation on the ith iteration is slowed down by a
factor proportional to the maximum diameter of clusters at that
iteration".

:class:`VirtualNetwork` reifies that accounting: it is a genuine
:class:`~repro.sim.network.Network` over the contracted topology, plus a
``round_cost`` multiplier equal to ``2 * max_cluster_radius + 1``
(center → boundary → center, plus the crossing edge), so that
``physical_rounds`` reports the cost in base-network rounds.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .network import DEFAULT_MAX_ROUNDS, Network, ProgramFactory


class ContractedGraph:
    """The quotient graph of a base graph under a cluster partition.

    Nodes are cluster identifiers (we use the cluster center's id);
    two clusters are adjacent iff some base edge joins them.  Satisfies
    the topology protocol expected by :class:`Network`.
    """

    def __init__(
        self,
        base_graph,
        clusters: Dict[Any, Set[Any]],
        tree_edges_only: Optional[Iterable[Tuple[Any, Any]]] = None,
    ):
        """``clusters`` maps center id -> set of base nodes (disjoint,
        covering).  If ``tree_edges_only`` is given, only those base
        edges induce contracted adjacency (used when contracting a
        spanning tree rather than the whole graph)."""
        self.base_graph = base_graph
        self.clusters = {center: set(members) for center, members in clusters.items()}
        self.center_of: Dict[Any, Any] = {}
        for center, members in self.clusters.items():
            for v in members:
                if v in self.center_of:
                    raise ValueError(f"node {v} appears in two clusters")
                self.center_of[v] = center
        covered = set(self.center_of)
        base_nodes = set(base_graph.nodes)
        if covered != base_nodes:
            missing = base_nodes - covered
            extra = covered - base_nodes
            raise ValueError(
                f"clusters do not partition the graph (missing={missing!r}, "
                f"extra={extra!r})"
            )

        self._adjacency: Dict[Any, Set[Any]] = {c: set() for c in self.clusters}
        if tree_edges_only is not None:
            edge_iter = tree_edges_only
        else:
            edge_iter = base_graph.edges()
        for u, v in edge_iter:
            cu, cv = self.center_of[u], self.center_of[v]
            if cu != cv:
                self._adjacency[cu].add(cv)
                self._adjacency[cv].add(cu)

    @property
    def nodes(self) -> List[Any]:
        return sorted(self.clusters)

    def neighbors(self, center) -> List[Any]:
        return sorted(self._adjacency[center])

    @property
    def num_nodes(self) -> int:
        return len(self.clusters)

    def radius_of(self, center, distances=None) -> int:
        """Radius of a cluster around its center, measured in the base
        graph restricted to the cluster (BFS within the member set)."""
        members = self.clusters[center]
        if len(members) == 1:
            return 0
        frontier = [center]
        seen = {center}
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for v in frontier:
                for u in self.base_graph.neighbors(v):
                    if u in members and u not in seen:
                        seen.add(u)
                        next_frontier.append(u)
            if not next_frontier:
                depth -= 1
                break
            frontier = next_frontier
        if seen != members:
            raise ValueError(
                f"cluster of {center} is not connected within the base graph"
            )
        return depth

    def max_radius(self) -> int:
        return max((self.radius_of(c) for c in self.clusters), default=0)


class VirtualNetwork:
    """A Network over a contracted graph, with physical-round accounting."""

    def __init__(self, contracted: ContractedGraph, word_limit: int = 8):
        self.contracted = contracted
        self.network = Network(contracted, word_limit=word_limit)
        self.round_cost = 2 * contracted.max_radius() + 1

    def run(
        self,
        program_factory: ProgramFactory,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        **kwargs,
    ):
        metrics = self.network.run(program_factory, max_rounds=max_rounds, **kwargs)
        return metrics

    @property
    def virtual_rounds(self) -> int:
        return self.network.metrics.rounds

    @property
    def physical_rounds(self) -> int:
        """Cost of the virtual execution in base-network rounds."""
        return self.virtual_rounds * self.round_cost

    def outputs(self):
        return self.network.outputs()

    def output_field(self, key: str):
        return self.network.output_field(key)
