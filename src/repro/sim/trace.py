"""Execution tracing for debugging and for the pipelining experiments.

Lemma 5.3 of the paper is a statement about *when* nodes send: once a
node starts upcasting it never stalls.  Verifying it requires observing
per-round send behaviour, which is what :class:`TraceRecorder` captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from .program import Context, NodeProgram


@dataclass(frozen=True)
class TraceEvent:
    round: int
    node: Any
    kind: str  # "send" | "round" | "halt"
    detail: Tuple[Any, ...]


class TraceRecorder:
    """Collects :class:`TraceEvent`s emitted by traced programs."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, round_number: int, node: Any, kind: str, *detail: Any) -> None:
        self.events.append(TraceEvent(round_number, node, kind, tuple(detail)))

    def sends_by_node(self) -> Dict[Any, List[int]]:
        """Map node -> sorted list of rounds in which it sent a message."""
        sends: Dict[Any, List[int]] = {}
        for event in self.events:
            if event.kind == "send":
                sends.setdefault(event.node, []).append(event.round)
        for rounds in sends.values():
            rounds.sort()
        return sends

    def rounds_active(self, node: Any) -> List[int]:
        return sorted(
            {e.round for e in self.events if e.node == node and e.kind == "round"}
        )

    def stalls(self, node: Any) -> List[int]:
        """Rounds strictly between a node's first and last send in which
        it sent nothing — the "waiting" the paper proves cannot happen in
        Procedure Pipeline."""
        sends = self.sends_by_node().get(node, [])
        if len(sends) < 2:
            return []
        send_set = set(sends)
        return [r for r in range(sends[0], sends[-1] + 1) if r not in send_set]


def traced(
    program_factory: Callable[[Context], NodeProgram], recorder: TraceRecorder
) -> Callable[[Context], NodeProgram]:
    """Wrap a program factory so every send/round/halt is recorded."""

    def factory(ctx: Context) -> NodeProgram:
        program = program_factory(ctx)
        original_send = program.send
        original_on_round = program.on_round
        original_halt = program.halt

        def send(neighbor, *fields):
            recorder.record(ctx.round, ctx.node, "send", neighbor, fields)
            return original_send(neighbor, *fields)

        def on_round(inbox):
            recorder.record(ctx.round, ctx.node, "round", len(inbox))
            return original_on_round(inbox)

        def halt():
            recorder.record(ctx.round, ctx.node, "halt")
            return original_halt()

        program.send = send  # type: ignore[method-assign]
        program.on_round = on_round  # type: ignore[method-assign]
        program.halt = halt  # type: ignore[method-assign]
        return program

    return factory
