"""Execution tracing for debugging and for the pipelining experiments.

Lemma 5.3 of the paper is a statement about *when* nodes send: once a
node starts upcasting it never stalls.  Verifying it requires observing
per-round send behaviour, which is what :class:`TraceRecorder` captures.

The recorder is an :class:`~repro.obs.Subscriber` over the engine's
native event stream (:mod:`repro.obs`).  It used to be driven by
:func:`traced`, a factory wrapper that monkey-patched ``send`` /
``on_round`` / ``halt`` on each program — which silently under-reported
``rounds_active()`` and ``stalls()`` under ``scheduling="active"``,
because the engine legitimately skips idle programs there, so "was
invoked" stopped being a proxy for "was active".  The recorder now sees
exactly what the engine does, in either scheduling mode, and "active"
means *model-visibly* active: the node sent, received, woke, or halted
that round.  Attach it with :meth:`~repro.sim.network.Network.
attach_subscriber` (or :func:`repro.obs.observe`); :func:`traced`
remains as a thin deprecated shim for old call sites.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from ..obs.events import Event, Subscriber
from .program import Context, NodeProgram


@dataclass(frozen=True)
class TraceEvent:
    round: int
    node: Any
    kind: str  # "send" | "deliver" | "wakeup" | "halt"
    detail: Tuple[Any, ...]


class TraceRecorder(Subscriber):
    """Collects :class:`TraceEvent`s from the engine event stream.

    Detail shapes (chosen for continuity with the old recorder — a
    ``send`` detail is still ``(receiver, payload_tuple)``):

    * ``send`` — ``(receiver, payload)``;
    * ``deliver`` — ``(sender, tag)``;
    * ``wakeup`` — ``(target_round,)``;
    * ``halt`` — ``()``.
    """

    #: Engine event kinds this recorder keeps.
    KINDS = ("send", "deliver", "wakeup", "halt")

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._attached: List[Any] = []

    # -- Subscriber interface ----------------------------------------------
    def on_event(self, event: Event) -> None:
        kind = event["kind"]
        if kind == "send":
            detail = (event["peer"], tuple(event["payload"]))
        elif kind == "deliver":
            detail = (event["peer"], event["tag"])
        elif kind == "wakeup":
            detail = (event["target"],)
        elif kind == "halt":
            detail = ()
        else:  # fault events; MetricsCollector is the tool for those
            return
        self.events.append(
            TraceEvent(event["round"], event["node"], kind, detail)
        )

    def attach_to(self, network: Any) -> "TraceRecorder":
        """Subscribe to ``network`` (idempotent per network)."""
        if not any(network is seen for seen in self._attached):
            self._attached.append(network)
            network.attach_subscriber(self)
        return self

    # -- queries --------------------------------------------------------------
    def record(self, round_number: int, node: Any, kind: str, *detail: Any) -> None:
        """Append an event by hand (kept for external callers)."""
        self.events.append(TraceEvent(round_number, node, kind, tuple(detail)))

    def sends_by_node(self) -> Dict[Any, List[int]]:
        """Map node -> sorted list of rounds in which it sent a message."""
        sends: Dict[Any, List[int]] = {}
        for event in self.events:
            if event.kind == "send":
                sends.setdefault(event.node, []).append(event.round)
        for rounds in sends.values():
            rounds.sort()
        return sends

    def rounds_active(self, node: Any) -> List[int]:
        """Rounds in which ``node`` was model-visibly active (sent,
        received, requested a wakeup, or halted).

        Unlike the old invocation-based definition this is identical
        under ``scheduling="full"`` and ``scheduling="active"`` — an
        empty-inbox no-op invocation never was meaningful activity.
        """
        return sorted({e.round for e in self.events if e.node == node})

    def stalls(self, node: Any) -> List[int]:
        """Rounds strictly between a node's first and last send in which
        it sent nothing — the "waiting" the paper proves cannot happen in
        Procedure Pipeline."""
        sends = self.sends_by_node().get(node, [])
        if len(sends) < 2:
            return []
        send_set = set(sends)
        return [r for r in range(sends[0], sends[-1] + 1) if r not in send_set]


def traced(
    program_factory: Callable[[Context], NodeProgram], recorder: TraceRecorder
) -> Callable[[Context], NodeProgram]:
    """Deprecated: attach ``recorder`` to the network running ``factory``.

    Prefer ``network.attach_subscriber(recorder)`` (or an ambient
    :func:`repro.obs.observe` session) — this shim only exists so old
    call sites keep working.  It no longer wraps program methods; it
    subscribes the recorder to the constructing network the first time
    the factory runs, so the engine's event stream does the recording.
    """
    warnings.warn(
        "traced() is deprecated; use Network.attach_subscriber(recorder) "
        "or repro.obs.observe() instead",
        DeprecationWarning,
        stacklevel=2,
    )

    def factory(ctx: Context) -> NodeProgram:
        recorder.attach_to(ctx._network)
        return program_factory(ctx)

    return factory
