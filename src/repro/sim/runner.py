"""Execution helpers: parallel composition and staged drivers.

The paper repeatedly applies a sub-algorithm "on each cluster
separately".  Because clusters are vertex-disjoint, the executions do
not interact, and running them on independent sub-networks while taking
the *maximum* round count is an exact model of the parallel composition.
:func:`run_in_parallel` packages that argument.

Two execution backends are available:

* ``backend="inline"`` (the default) runs the sub-networks one after
  another in this process.  The *accounting* is still parallel (rounds
  are the max), and every byte of engine state stays observable, which
  is what the determinism and observability suites rely on.
* ``backend="process"`` fans the runs across a pool of worker
  processes (:mod:`repro.batch.pool`), so disjoint clusters really do
  execute concurrently on separate cores.  Each run ships as a
  :class:`~repro.batch.dispatch.NetworkSpec` rebuild recipe when its
  graph carries provenance (spec-based dispatch; a few hundred bytes),
  falling back to pickling the whole pre-run network otherwise.  Each
  worker sends back its metrics and node outputs, which are adopted
  into the caller's :class:`~repro.sim.network.Network` objects.
  Results are merged in submission order, so the combined metrics are
  byte-for-byte identical to the inline backend regardless of
  completion order.  Passing ``pool=`` (or entering a
  :class:`~repro.batch.pool.SharedPool` context) reuses one persistent
  pool across calls instead of spawning workers per call.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from .metrics import RunMetrics
from .network import DEFAULT_MAX_ROUNDS, Network, ProgramFactory

#: Execution backends accepted by :func:`run_in_parallel`.
PARALLEL_BACKENDS = ("inline", "process")


class ParallelRunError(RuntimeError):
    """A sub-run of :func:`run_in_parallel` raised.

    The networks and metrics of every run that *did* complete are kept
    (``networks``, ``metrics``) instead of being lost with the
    exception; ``index`` is the position of the first failing run in
    the submission order, and the original exception is chained as
    ``__cause__``.
    """

    def __init__(
        self,
        index: int,
        networks: List[Network],
        metrics: RunMetrics,
        cause: BaseException,
    ) -> None:
        super().__init__(
            f"parallel run {index} failed: {cause!r} "
            f"({len(networks)} completed run(s) preserved)"
        )
        self.index = index
        self.networks = networks
        self.metrics = metrics


def run_in_parallel(
    runs: Iterable[Tuple[Network, ProgramFactory]],
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    backend: str = "inline",
    workers: Optional[int] = None,
    pool: Optional[Any] = None,
    deadline_s: Optional[float] = None,
) -> Tuple[List[Network], RunMetrics]:
    """Run several disjoint sub-networks simultaneously.

    Returns the list of networks (for output collection) and the full
    parallel composition of their metrics via :meth:`RunMetrics.merge`:
    ``rounds`` is the maximum across runs (they execute in parallel);
    traffic, halt counts and fault counters are summed.

    ``backend`` selects where the runs execute (see the module
    docstring); ``workers`` bounds the process pool (default: the CPU
    count) and ``pool`` reuses a persistent
    :class:`~repro.batch.pool.SharedPool` instead of spawning one (an
    ambient entered SharedPool is picked up automatically).  If a run
    raises, the completed runs are preserved and the failure is
    re-raised as :class:`ParallelRunError` with the original exception
    chained.  ``deadline_s`` (process backend only) arms the
    hung-worker watchdog: a run in flight longer than the deadline gets
    its worker killed, a pool restart and a bounded number of retries
    (see :class:`~repro.batch.pool.SharedPool`).
    """
    if backend not in PARALLEL_BACKENDS:
        raise ValueError(
            f"backend must be one of {PARALLEL_BACKENDS}, got {backend!r}"
        )
    run_list = list(runs)
    if backend == "process" and len(run_list) > 1:
        from ..batch.pool import run_networks_in_pool

        return run_networks_in_pool(
            run_list, max_rounds, workers, pool=pool, deadline_s=deadline_s
        )
    networks: List[Network] = []
    collected: List[RunMetrics] = []
    for index, (network, factory) in enumerate(run_list):
        try:
            result = network.run(factory, max_rounds=max_rounds)
        except Exception as exc:
            raise ParallelRunError(
                index, networks, RunMetrics.merge(collected), exc
            ) from exc
        networks.append(network)
        # A faulty sub-network returns a RunReport; merge its metrics.
        collected.append(getattr(result, "metrics", result))
    return networks, RunMetrics.merge(collected)


class StagedRun:
    """Accumulator for the sequential stages of a composite algorithm.

    Stages execute one after the other (the paper's algorithms are
    sequential compositions), so rounds add up.  Each stage is recorded
    by name for the per-phase breakdown the benchmarks print.
    """

    def __init__(self) -> None:
        self.stage_rounds: Dict[str, int] = {}
        self.stage_order: List[str] = []
        self.total_messages = 0
        #: Sequential composition of every recorded stage's metrics
        #: (:meth:`RunMetrics.merged_with`): rounds add, traffic
        #: accumulates, and per-round counts are shifted onto the
        #: composite timeline, so ``combined.traffic.per_round`` is the
        #: full traffic profile of the staged execution.
        self.combined = RunMetrics()

    def record(self, name: str, metrics: RunMetrics) -> None:
        self.add_rounds(name, metrics.rounds)
        self.total_messages += metrics.traffic.messages
        self.combined = self.combined.merged_with(metrics)

    def add_rounds(self, name: str, rounds: int) -> None:
        if name not in self.stage_rounds:
            self.stage_rounds[name] = 0
            self.stage_order.append(name)
        self.stage_rounds[name] += rounds

    @property
    def total_rounds(self) -> int:
        return sum(self.stage_rounds.values())

    def breakdown(self) -> Dict[str, int]:
        return {name: self.stage_rounds[name] for name in self.stage_order}

    def spans(self) -> List[Dict[str, int]]:
        """The stages as half-open spans on the composite timeline.

        Stages run sequentially, so stage *i* occupies rounds
        ``[start, end)`` where ``start`` is the sum of all earlier
        stages.  This is the hand-off format for
        :meth:`repro.obs.Observation.record_phases`: per-phase round
        totals derived from the spans reproduce :meth:`breakdown`
        exactly.
        """
        spans: List[Dict[str, int]] = []
        cursor = 0
        for name in self.stage_order:
            rounds = self.stage_rounds[name]
            spans.append(
                {
                    "name": name,
                    "start": cursor,
                    "end": cursor + rounds,
                    "rounds": rounds,
                }
            )
            cursor += rounds
        return spans

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{name}={self.stage_rounds[name]}" for name in self.stage_order
        )
        return f"StagedRun(total={self.total_rounds}, {inner})"
