"""Exceptions raised by the CONGEST simulator.

The simulator is strict: model violations (oversized messages, more than
one message per edge per direction per round, sends to non-neighbours)
raise immediately rather than being silently tolerated, because the whole
point of the reproduction is to certify that the algorithms respect the
CONGEST model the paper assumes.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class ModelViolation(SimulationError):
    """An algorithm violated the CONGEST communication model."""


class MessageTooLarge(ModelViolation):
    """A message exceeded the O(log n)-bit budget (measured in words)."""

    def __init__(self, sender, receiver, payload, words, limit):
        self.sender = sender
        self.receiver = receiver
        self.payload = payload
        self.words = words
        self.limit = limit
        super().__init__(
            f"message {payload!r} from {sender} to {receiver} is {words} "
            f"words, exceeding the per-message limit of {limit}"
        )


class CongestionViolation(ModelViolation):
    """A node sent two messages over the same edge in one round."""

    def __init__(self, sender, receiver, round_number):
        self.sender = sender
        self.receiver = receiver
        self.round_number = round_number
        super().__init__(
            f"node {sender} sent a second message to {receiver} in round "
            f"{round_number}; the model allows one message per edge per "
            f"direction per round"
        )


class NotANeighbor(ModelViolation):
    """A node attempted to send to a node it shares no edge with."""

    def __init__(self, sender, receiver):
        self.sender = sender
        self.receiver = receiver
        super().__init__(
            f"node {sender} attempted to send to {receiver}, which is not "
            f"one of its neighbours"
        )


class UnserializablePayload(ModelViolation):
    """A message payload contained a field the model cannot encode."""

    def __init__(self, field):
        self.field = field
        super().__init__(
            f"payload field {field!r} of type {type(field).__name__} is not "
            f"encodable in O(log n)-bit words (allowed: int, bool, float, "
            f"short str, None, and shallow tuples thereof)"
        )


class RoundLimitExceeded(SimulationError):
    """The run did not terminate within the configured round budget."""

    def __init__(self, limit):
        self.limit = limit
        super().__init__(
            f"simulation did not terminate within {limit} rounds; "
            f"likely a livelock or an insufficient budget"
        )


class HaltedNodeActed(SimulationError):
    """A halted node attempted to send a message."""

    def __init__(self, node):
        self.node = node
        super().__init__(f"halted node {node} attempted to send a message")


class ConfigurationError(SimulationError):
    """The network or program was configured inconsistently."""


class FaultConfigError(ConfigurationError):
    """A fault-injection configuration or replay plan was invalid."""
