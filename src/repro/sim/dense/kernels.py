"""Dense ports of the message-passing primitives.

Each kernel re-derives, with whole-array numpy rounds, exactly what the
reference program computes node by node:

* :func:`dense_flood` — level-synchronous BFS from the source; the
  "first sender" a node forwards around is the minimum-``str`` neighbor
  one level up, which is a segment-min over ``str_rank``.
* :func:`dense_convergecast` — heights of the given parent forest, then
  one scatter-reduce per height level (``add``/``min``/``max``).
* :func:`dense_bfs_tree` — BFS levels plus a closed-form replay of the
  wave/echo/broadcast protocol: parent = min-``str`` offer, echo rounds
  from the recurrence ``E(v) = max(base(v), max_child E + 1)``, total
  rounds ``E(root) + M``.

Every kernel returns a :class:`~repro.sim.dense.core.DenseRun` whose
outputs, round count, and :class:`~repro.sim.metrics.RunMetrics` are
identical to the reference engine's.  Flood and convergecast also carry
replay emitters: under an active observation they reproduce the
reference event stream byte for byte (send/deliver/wakeup/halt, in
engine order).  BFS does not replay events — its driver falls back to
the reference engine whenever a tap would be bound.

A kernel signals "this input is outside my contract" by returning
``None`` from its ``plan`` step *before* any :class:`DenseRun` is
registered, so the caller can fall back to the reference engine without
perturbing observation run ids.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .core import DenseRun, finish_metrics, np, per_round_from_counts
from .csr import CSRAdjacency, csr_adjacency
from ..model import measure_words


# ---------------------------------------------------------------------------
# Shared level-structure machinery
# ---------------------------------------------------------------------------

def bfs_levels(
    csr: CSRAdjacency, source_row: int
) -> Tuple[Any, List[Any]]:
    """Distance array (−1 = unreached) and per-distance row arrays
    (each ascending, matching the engine's sorted schedule)."""
    n = csr.n
    dist = np.full(n, -1, dtype=np.int64)
    dist[source_row] = 0
    frontier = np.array([source_row], dtype=np.int64)
    levels = [frontier]
    while frontier.size:
        _, targets = csr.gather_edges(frontier)
        fresh = targets[dist[targets] < 0]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        dist[frontier] = len(levels)
        levels.append(frontier)
    return dist, levels


def _edge_endpoints(csr: CSRAdjacency) -> Tuple[Any, Any]:
    """All 2m directed edges as (source rows, target rows)."""
    sources = np.repeat(
        np.arange(csr.n, dtype=np.int64), csr.degrees
    )
    return sources, csr.indices


def min_str_prev_neighbor(
    csr: CSRAdjacency, dist: Any
) -> Tuple[Any, Any, Any]:
    """Per row: the minimum-``str`` neighbor one BFS level closer to the
    source (−1 for the source row), the count of such neighbors, and
    the count of same-level neighbors.

    This is exactly the reference parent/first-sender choice: offers
    arrive from *all* previous-level neighbors in the same round and the
    program picks ``min(offers, key=str(sender))``.
    """
    n = csr.n
    sources, targets = _edge_endpoints(csr)
    prev = dist[targets] == dist[sources] - 1
    same = dist[targets] == dist[sources]
    best_rank = np.full(n, n, dtype=np.int64)
    np.minimum.at(best_rank, sources[prev], csr.str_rank[targets[prev]])
    parent = np.full(n, -1, dtype=np.int64)
    found = best_rank < n
    parent[found] = csr.rank_to_row[best_rank[found]]
    offer_counts = np.bincount(sources[prev], minlength=n)
    same_counts = np.bincount(sources[same], minlength=n)
    return parent, offer_counts, same_counts


def _rows_except(csr: CSRAdjacency, row: int, skip: int) -> Any:
    """Neighbors of ``row`` excluding ``skip``, natural order."""
    neighbors = csr.neighbors_of(row)
    return neighbors[neighbors != skip]


# ---------------------------------------------------------------------------
# Flood
# ---------------------------------------------------------------------------

class FloodPlan:
    """Everything :func:`dense_flood` derived before registering a run."""

    def __init__(self, csr, dist, levels, first_sender, words):
        self.csr = csr
        self.dist = dist
        self.levels = levels
        self.first_sender = first_sender
        self.words = words


def plan_flood(graph, source, value, word_limit: int) -> Optional[FloodPlan]:
    """Precompute a flood, or ``None`` when the reference engine must
    run instead (unreached nodes would never halt; an oversized payload
    must raise from the engine's own word-limit check)."""
    csr = csr_adjacency(graph)
    if source not in csr.index:
        return None  # let the reference engine raise its own KeyError
    words = measure_words(("FLOOD", value, 1))
    if words > word_limit:
        return None
    dist, levels = bfs_levels(csr, csr.index[source])
    if int(dist.min()) < 0:
        return None
    first_sender, _, _ = min_str_prev_neighbor(csr, dist)
    return FloodPlan(csr, dist, levels, first_sender, words)


def dense_flood(graph, source, value, plan: FloodPlan) -> DenseRun:
    """Execute a planned flood; returns the network-shaped run."""
    csr, dist, levels = plan.csr, plan.dist, plan.levels
    run = DenseRun(graph)
    rounds = len(levels) - 1
    sends = csr.degrees - 1
    sends[csr.index[source]] = csr.degrees[csr.index[source]]
    per_round = np.bincount(dist, weights=sends, minlength=rounds + 1)
    messages = int(sends.sum())
    finish_metrics(
        run,
        rounds=rounds,
        messages=messages,
        total_words=messages * plan.words,
        max_words=plan.words if messages else 0,
        per_round=per_round_from_counts(per_round.astype(np.int64)),
    )
    hops = dist.tolist()
    run.set_outputs_factory(
        lambda: {
            v: {"value": value, "hops": h}
            for v, h in zip(csr.nodes, hops)
        }
    )
    if run.observed:
        _replay_flood(run, plan, value)
    return run


def _replay_flood(run: DenseRun, plan: FloodPlan, value) -> None:
    """Byte-exact event replay of the reference flood execution."""
    csr, levels = plan.csr, plan.levels
    nodes, words = csr.nodes, plan.words
    first = plan.first_sender.tolist()
    emit = run.emit
    source_row = int(levels[0][0])

    def fanout_rows(row: int) -> Any:
        if row == source_row:
            return csr.neighbors_of(row)
        return _rows_except(csr, row, first[row])

    # Round 0: the source broadcasts and halts during setup.
    source_id = nodes[source_row]
    for t in fanout_rows(source_row):
        emit({
            "kind": "send", "round": 0, "node": source_id,
            "peer": nodes[t], "words": words,
            "payload": ("FLOOD", value, 1),
        })
    emit({"kind": "halt", "round": 0, "node": source_id})
    # Round r: deliveries of round r−1's sends (outbox order), then the
    # sorted sweep where the distance-r level adopts, forwards, halts.
    for r in range(1, len(levels)):
        for s in levels[r - 1].tolist():
            sid = nodes[s]
            for t in fanout_rows(s):
                emit({
                    "kind": "deliver", "round": r, "node": nodes[t],
                    "peer": sid, "words": words,
                    "sent_round": r - 1, "tag": "FLOOD",
                })
        payload = ("FLOOD", value, r + 1)
        for v in levels[r].tolist():
            vid = nodes[v]
            for t in fanout_rows(v):
                emit({
                    "kind": "send", "round": r, "node": vid,
                    "peer": nodes[t], "words": words,
                    "payload": payload,
                })
            emit({"kind": "halt", "round": r, "node": vid})


# ---------------------------------------------------------------------------
# Convergecast
# ---------------------------------------------------------------------------

class ConvergecastPlan:
    def __init__(self, csr, parent, heights, height_levels, reduce_kind):
        self.csr = csr
        self.parent = parent  # row -> parent row, −1 at the root
        self.heights = heights
        self.height_levels = height_levels  # rows grouped by height, asc
        self.reduce_kind = reduce_kind  # "sum" | "max" | "min"


def _group_by_level(values: Any, count: int) -> List[Any]:
    """Rows grouped by ``values`` (0..count−1), ascending inside each
    group — one stable argsort instead of ``count`` boolean scans."""
    order = np.argsort(values, kind="stable")
    boundaries = np.searchsorted(values[order], np.arange(count + 1))
    return [
        order[boundaries[i]: boundaries[i + 1]] for i in range(count)
    ]


def forest_heights(parent: Any, n: int) -> Optional[Tuple[Any, Any]]:
    """Height of every row in the forest given by ``parent`` (−1 =
    root), plus each row's depth.  Returns ``None`` if ``parent``
    contains a cycle (the reference program would deadlock; callers
    treat it as un-plannable)."""
    depth = np.full(n, -1, dtype=np.int64)
    roots = np.flatnonzero(parent < 0)
    depth[roots] = 0
    frontier = roots
    # Child adjacency via one argsort over parents; every row appears
    # as a child at most once, so the walk is O(n) total.
    order = np.argsort(parent, kind="stable")
    child_ptr = np.searchsorted(parent[order], np.arange(n + 1))
    level = 0
    while frontier.size:
        starts = child_ptr[frontier]
        counts = child_ptr[frontier + 1] - starts
        total = int(counts.sum())
        level += 1
        if total == 0:
            break
        ends = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            ends - counts, counts
        )
        children = order[np.repeat(starts, counts) + within]
        depth[children] = level
        frontier = children
    if int(depth.min()) < 0:
        return None
    heights = np.zeros(n, dtype=np.int64)
    levels = _group_by_level(depth, int(depth.max()) + 1)
    for rows in reversed(levels):
        inner = rows[parent[rows] >= 0]
        if inner.size:
            np.maximum.at(heights, parent[inner], heights[inner] + 1)
    return heights, depth


def plan_convergecast(
    graph, root, parent_of, local_values, reduce_kind: str, word_limit: int
) -> Optional[ConvergecastPlan]:
    """Precompute a convergecast, or ``None`` on any input the dense
    port cannot reproduce exactly: malformed parent maps, non-scalar
    values, integer ranges where an int64 reduction could overflow, or
    floating sums (whose result depends on the reference engine's
    arrival order)."""
    if word_limit < 2:
        return None
    csr = csr_adjacency(graph)
    if root not in csr.index:
        return None
    n = csr.n
    parent = np.full(n, -1, dtype=np.int64)
    values = np.empty(n, dtype=np.float64)
    is_float = False
    for i, v in enumerate(csr.nodes):
        p = parent_of.get(v)
        if v == root:
            if p is not None:
                return None
        elif p is None or p not in csr.index:
            return None
        else:
            parent[i] = csr.index[p]
        try:
            value = local_values[v]
        except (KeyError, TypeError):
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        if isinstance(value, float):
            is_float = True
        values[i] = value
    if is_float and reduce_kind == "sum":
        return None  # float sums are arrival-order dependent
    if not is_float:
        bound = np.abs(values).max() if n else 0.0
        if bound * max(n, 1) >= 2.0**62:
            return None  # int64 reduction could overflow; use reference
    # Every parent edge must exist in the graph (the reference program
    # reads children off ctx.neighbors).
    sources, targets = _edge_endpoints(csr)
    has_edge = np.zeros(n, dtype=bool)
    has_edge[sources[parent[sources] == targets]] = True
    if not bool(has_edge[parent >= 0].all()):
        return None
    grown = forest_heights(parent, n)
    if grown is None:
        return None
    heights, _ = grown
    plan = ConvergecastPlan(
        csr,
        parent,
        heights,
        _group_by_level(heights, int(heights.max()) + 1),
        reduce_kind,
    )
    plan.values = values if is_float else values.astype(np.int64)
    plan.is_float = is_float
    return plan


def dense_convergecast(graph, root, plan: ConvergecastPlan) -> Tuple[Any, DenseRun]:
    """Execute a planned convergecast; returns (root aggregate, run)."""
    csr, parent = plan.csr, plan.parent
    n = csr.n
    run = DenseRun(graph)
    aggregate = plan.values.copy()
    # Fold child aggregates upward one height level at a time; a node's
    # children all live at strictly smaller heights, so by the time a
    # level is folded its own values are final.
    for rows in plan.height_levels:
        inner = rows[parent[rows] >= 0]
        if not inner.size:
            continue
        if plan.reduce_kind == "sum":
            np.add.at(aggregate, parent[inner], aggregate[inner])
        elif plan.reduce_kind == "max":
            np.maximum.at(aggregate, parent[inner], aggregate[inner])
        else:
            np.minimum.at(aggregate, parent[inner], aggregate[inner])
    rounds = int(plan.heights.max()) if n else 0
    non_root = parent >= 0
    messages = int(non_root.sum())
    per_round = np.bincount(
        plan.heights[non_root], minlength=rounds + 1
    )
    finish_metrics(
        run,
        rounds=rounds,
        messages=messages,
        total_words=2 * messages,
        max_words=2 if messages else 0,
        per_round=per_round_from_counts(per_round),
    )
    agg_list = aggregate.tolist()
    run.set_outputs_factory(
        lambda: {
            v: {"aggregate": a} for v, a in zip(csr.nodes, agg_list)
        }
    )
    if run.observed:
        _replay_convergecast(run, plan, agg_list)
    return agg_list[csr.index[root]], run


def _replay_convergecast(
    run: DenseRun, plan: ConvergecastPlan, agg_list: List[Any]
) -> None:
    csr, parent = plan.csr, plan.parent
    nodes = csr.nodes
    emit = run.emit
    levels = plan.height_levels

    def fire(rows: Any, round_number: int) -> None:
        for v in rows.tolist():
            p = parent[v]
            if p >= 0:
                emit({
                    "kind": "send", "round": round_number,
                    "node": nodes[v], "peer": nodes[p], "words": 2,
                    "payload": ("CC", agg_list[v]),
                })
            emit({
                "kind": "halt", "round": round_number, "node": nodes[v],
            })

    # Setup: leaves (height 0) aggregate, send, halt — in index order.
    fire(levels[0], 0)
    for r in range(1, len(levels)):
        # Deliveries first: the previous level's sends, in outbox order
        # (= sender index order, one message each).
        for s in levels[r - 1].tolist():
            p = parent[s]
            if p >= 0:
                emit({
                    "kind": "deliver", "round": r, "node": nodes[p],
                    "peer": nodes[s], "words": 2,
                    "sent_round": r - 1, "tag": "CC",
                })
        # Sweep: exactly the height-r level fires this round.
        fire(levels[r], r)


# ---------------------------------------------------------------------------
# BFS tree
# ---------------------------------------------------------------------------

class BFSPlan:
    def __init__(self, csr, dist, levels, parent, offers, same_counts):
        self.csr = csr
        self.dist = dist
        self.levels = levels
        self.parent = parent
        self.offers = offers
        self.same_counts = same_counts


def plan_bfs(graph, root, word_limit: int) -> Optional[BFSPlan]:
    if word_limit < 2:
        return None
    csr = csr_adjacency(graph)
    if root not in csr.index:
        return None
    dist, levels = bfs_levels(csr, csr.index[root])
    if int(dist.min()) < 0:
        return None  # disconnected: reference raises RoundLimitExceeded
    parent, offers, same_counts = min_str_prev_neighbor(csr, dist)
    return BFSPlan(csr, dist, levels, parent, offers, same_counts)


def dense_bfs_tree(graph, root, plan: BFSPlan) -> DenseRun:
    """Execute a planned BFS-tree construction.

    Echo rounds follow the wave protocol's closed form: a node with no
    un-offered neighbors echoes at ``depth+1`` (off its scheduler
    wakeup); any other node waits for its wave responses (``depth+2``)
    and its childrens' echoes (``E(child)+1``); the root's floor is
    round 2.  Total rounds = ``E(root) + M``.
    """
    csr, dist, levels, parent = plan.csr, plan.dist, plan.levels, plan.parent
    n = csr.n
    run = DenseRun(graph)
    root_row = csr.index[root]
    depth_max = len(levels) - 1

    if n == 1:
        finish_metrics(run, 0, 0, 0, 0, {})
        run.set_outputs(
            {root: {
                "parent": None, "depth": 0, "children": (),
                "tree_depth": 0, "t1": 1,
            }}
        )
        run.bfs_parents = {root: None}
        run.bfs_depths = {root: 0}
        return run

    degrees = csr.degrees
    others = degrees - plan.offers  # wave fan-out after adoption
    others[root_row] = degrees[root_row]
    # E(v): deepest level first, folding E(child)+1 into each parent.
    base = np.where(others > 0, dist + 2, dist + 1)
    base[root_row] = 2
    echo_round = np.zeros(n, dtype=np.int64)
    child_acc = np.zeros(n, dtype=np.int64)
    for rows in reversed(levels):
        echo_round[rows] = np.maximum(base[rows], child_acc[rows])
        inner = rows[parent[rows] >= 0]
        if inner.size:
            np.maximum.at(
                child_acc, parent[inner], echo_round[inner] + 1
            )
    e_root = int(echo_round[root_row])
    rounds = e_root + depth_max

    # -- metrics --------------------------------------------------------------
    # Adoption bundle: every non-root sends deg(v) messages on round
    # d(v) (1 ACCEPT + (offers−1) REJECTs + others WAVEs); the root
    # sends deg WAVEs on round 0.  Late REJECTs answer same-level
    # waves one round after adoption; ECHO fires at E(v); MFIN goes to
    # each child at E(root)+depth.
    per_round = np.zeros(rounds + 1, dtype=np.int64)
    np.add.at(per_round, dist, degrees)
    np.add.at(per_round, dist + 1, plan.same_counts)
    non_root = np.arange(n) != root_row
    np.add.at(per_round, echo_round[non_root], 1)
    child_counts = np.bincount(parent[non_root], minlength=n)
    np.add.at(per_round, e_root + dist, child_counts)
    messages = int(per_round.sum())
    # offers(root) = 0, so this sum already counts the root's fan-out.
    wave_words = 2 * (degrees - plan.offers).sum()
    accept_reject_words = (
        plan.offers.sum() + plan.same_counts.sum()
    )
    echo_mfin_words = 2 * (n - 1) * 2
    finish_metrics(
        run,
        rounds=rounds,
        messages=messages,
        total_words=int(wave_words + accept_reject_words + echo_mfin_words),
        max_words=2,
        per_round=per_round_from_counts(per_round),
    )

    # -- outputs --------------------------------------------------------------
    nodes = csr.nodes
    parent_list = parent.tolist()
    dist_list = dist.tolist()

    def build_outputs() -> Dict[Any, Dict[str, Any]]:
        children: List[List[Any]] = [[] for _ in range(n)]
        # Children in str-order: visit rows by str rank so appends land
        # pre-sorted.
        for row in csr.rank_to_row.tolist():
            p = parent_list[row]
            if p >= 0:
                children[p].append(nodes[row])
        t1 = e_root + depth_max + 1
        return {
            nodes[row]: {
                "parent": None if row == root_row else nodes[parent_list[row]],
                "depth": dist_list[row],
                "children": tuple(children[row]),
                "tree_depth": depth_max,
                "t1": t1,
            }
            for row in range(n)
        }

    run.set_outputs_factory(build_outputs)
    # The driver's return values, straight from the arrays (cheaper
    # than materialising the full per-node output dicts).
    run.bfs_parents = {
        nodes[row]: None if row == root_row else nodes[parent_list[row]]
        for row in range(n)
    }
    run.bfs_depths = dict(zip(nodes, dist_list))
    return run
