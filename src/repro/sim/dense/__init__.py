"""repro.sim.dense — the vectorized (numpy) execution backend.

Public surface:

* availability: :data:`HAVE_NUMPY`, :func:`require_numpy`,
  :class:`DenseUnavailable`;
* adjacency: :func:`csr_adjacency` (provenance-cached),
  :func:`build_csr`, :class:`CSRAdjacency`;
* primitive kernels: ``plan_*``/``dense_*`` pairs for flood,
  convergecast, and BFS (the plan step returns ``None`` when the input
  is outside the dense contract, *before* any run is registered with an
  observation — so callers can fall back to the reference engine
  without perturbing trace run ids);
* forest kernels (:mod:`repro.sim.dense.forest`): the FastDOM/TreeKDom
  stages — per-cluster DP, nearest-dominator waves, and the ruling-set
  (six-coloring + matching + star partition) rounds of the balanced
  partition stage.

This package imports cleanly without numpy; only actually *selecting*
``backend="dense"`` requires it.
"""

from .core import (
    DenseRun,
    DenseUnavailable,
    HAVE_NUMPY,
    require_numpy,
)
from .csr import (
    CSRAdjacency,
    build_csr,
    cache_clear,
    cache_info,
    csr_adjacency,
)
from .kernels import (
    dense_bfs_tree,
    dense_convergecast,
    dense_flood,
    plan_bfs,
    plan_convergecast,
    plan_flood,
)
from .forest import (
    balanced_rows,
    cluster_arrays,
    dense_balanced_on_forest,
    dense_cluster_domination,
    dense_kdom_dp_run,
    dense_wave_run,
    nearest_dominator_wave,
    partition_from_labels,
    plan_tree_kdom,
)

__all__ = [
    "CSRAdjacency",
    "DenseRun",
    "DenseUnavailable",
    "HAVE_NUMPY",
    "balanced_rows",
    "build_csr",
    "cache_clear",
    "cache_info",
    "cluster_arrays",
    "csr_adjacency",
    "dense_balanced_on_forest",
    "dense_bfs_tree",
    "dense_cluster_domination",
    "dense_convergecast",
    "dense_flood",
    "dense_kdom_dp_run",
    "dense_wave_run",
    "nearest_dominator_wave",
    "partition_from_labels",
    "plan_bfs",
    "plan_convergecast",
    "plan_flood",
    "plan_tree_kdom",
]
