"""Dense kernels for the FastDOM/TreeKDom stages.

Three groups of kernels, mirroring the reference drivers:

* **Tree k-domination DP** (:func:`kdom_dp`) — the bottom-up
  convergecast of :class:`~repro.core.kdom_tree.TreeKDomProgram`,
  evaluated as one max/min scatter-reduce per height level.  The same
  arrays serve a single tree (``tree_kdominating_set``) and a whole
  cluster forest at once (``fastdom_tree``'s per-cluster parallel
  stage): restricting the parent array to in-cluster edges makes the
  per-level reduction identical to running one program per cluster, and
  :func:`dp_metrics` reproduces the :meth:`RunMetrics.merge` of the
  per-cluster runs in closed form (rounds = max cluster height,
  traffic summed).

* **Nearest-dominator wave** (:func:`nearest_dominator_wave`) — the
  k-round multi-source label propagation of
  :class:`~repro.core.kdom_tree.NearestDominatorProgram`: one
  scatter-min of dominator labels over cluster-internal edges per
  level.  A node adopts the minimum label among its one-level-closer
  neighbours — exactly ``sorted(offers)[0]`` in the reference — and
  everything halts at round ``k`` off the wakeup schedule.

* **Balanced stage** (:func:`dense_balanced_on_forest`) — the
  ruling-set rounds of ``Small-Dom-Set`` on the *contracted* forest
  (Cole–Vishkin six-colouring, shift-down to three colours, the
  three-phase maximal matching, and the star partition), as whole-array
  steps over the ``top -> parent top`` map.  The contracted forest's
  adjacency equals its parent relation (a connected subtree of a tree
  has exactly one member whose parent lies outside), so no contracted
  graph object is ever materialised.  Returns the virtual round count
  the reference :class:`~repro.sim.virtual.VirtualNetwork` would have
  measured: every node's script consumes one yield per round —
  ``cv_iterations + 1`` for the colouring and its drain round, two per
  shift-down phase, three per matching phase, and two for the star
  partition — so all nodes halt at round ``cv_iterations + 18``.

The single-tree DP/wave kernels carry byte-exact trace replay
(:func:`replay_dp`, :func:`replay_wave`); the forest-wide and balanced
kernels do not, so their drivers fall back to the reference engine
whenever an observation session is active.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .core import DenseRun, np
from .csr import CSRAdjacency, csr_adjacency
from .kernels import _edge_endpoints, _group_by_level, forest_heights
from ..metrics import RunMetrics
from ...symmetry.log_star import cv_iterations

#: Fixed yield count of the SmallDomSet script after the colouring:
#: 1 drain round + 3 shift-down phases x 2 + 3 matching phases x 3 + 2
#: star-partition rounds.
_BALANCED_EXTRA_ROUNDS = 18

#: ``("DP", uncov, cov)`` and ``("DOM", id, dist)`` both measure 3 words.
_WORDS = 3


def _adopt_metrics(run: DenseRun, metrics: RunMetrics) -> None:
    """Install a fully-built :class:`RunMetrics` on a dense run."""
    run.metrics = metrics
    run.current_round = metrics.rounds


# ---------------------------------------------------------------------------
# Parent arrays
# ---------------------------------------------------------------------------

def plan_parent_rows(csr: CSRAdjacency, root, parent_of) -> Optional[Any]:
    """``row -> parent row`` for a single-root parent map, or ``None``
    when the map falls outside the reference program's happy path
    (missing parents, a parented root, parent edges absent from the
    graph) — those inputs must fail or hang in the engine's own way."""
    n = csr.n
    parent = np.full(n, -1, dtype=np.int64)
    for i, v in enumerate(csr.nodes):
        p = parent_of.get(v)
        if v == root:
            if p is not None:
                return None
        elif p is None or p not in csr.index:
            return None
        else:
            parent[i] = csr.index[p]
    sources, targets = _edge_endpoints(csr)
    has_edge = np.zeros(n, dtype=bool)
    has_edge[sources[parent[sources] == targets]] = True
    if not bool(has_edge[parent >= 0].all()):
        return None
    return parent


# ---------------------------------------------------------------------------
# Tree k-domination DP
# ---------------------------------------------------------------------------

def kdom_dp(
    parent: Any, height_levels: List[Any], k: int
) -> Tuple[Any, Any, Any]:
    """Evaluate the tree k-domination DP bottom-up over height levels.

    Returns ``(in_dom, state_u, state_c)``: the membership flags and the
    exact ``(uncov, cov)`` pair each node sends to its parent.  With a
    cluster-restricted ``parent`` array this evaluates every cluster's
    DP simultaneously (each row with ``parent < 0`` acts as its
    cluster's sub-root).
    """
    n = parent.shape[0]
    cap = k + 1
    acc_a = np.zeros(n, dtype=np.int64)  # max(child uncov + 1), 0 = self
    acc_b = np.full(n, cap, dtype=np.int64)  # min(child cov + 1), capped
    state_u = np.empty(n, dtype=np.int64)
    state_c = np.empty(n, dtype=np.int64)
    in_dom = np.zeros(n, dtype=bool)
    for rows in height_levels:
        a = acc_a[rows]
        b = acc_b[rows]
        covered = a + b <= k
        dominates = ~covered & (a >= k)
        state_u[rows] = np.where(covered | dominates, -1, a)
        state_c[rows] = np.where(dominates, 0, b)
        in_dom[rows[dominates]] = True
        inner = rows[parent[rows] >= 0]
        if inner.size:
            np.maximum.at(acc_a, parent[inner], state_u[inner] + 1)
            np.minimum.at(
                acc_b, parent[inner], np.minimum(state_c[inner] + 1, cap)
            )
    roots = parent < 0
    in_dom[roots & (state_u != -1)] = True
    return in_dom, state_u, state_c


def dp_metrics(parent: Any, heights: Any) -> RunMetrics:
    """Metrics of the DP convergecast — identical to the parallel merge
    of the per-cluster reference runs: a node fires (and a non-root
    sends its 3-word state) at round = its height."""
    non_root = parent >= 0
    messages = int(non_root.sum())
    rounds = int(heights.max()) if heights.size else 0
    per_round = np.bincount(heights[non_root], minlength=rounds + 1)
    metrics = RunMetrics()
    metrics.rounds = rounds
    metrics.traffic.messages = messages
    metrics.traffic.total_words = _WORDS * messages
    metrics.traffic.max_words = _WORDS if messages else 0
    metrics.traffic.per_round = {
        r: int(c) for r, c in enumerate(per_round) if c
    }
    metrics.all_halted = True
    metrics.halted_nodes = int(parent.shape[0])
    return metrics


def replay_dp(
    run: DenseRun,
    csr: CSRAdjacency,
    parent: Any,
    height_levels: List[Any],
    state_u: Any,
    state_c: Any,
) -> None:
    """Byte-exact event replay of the single-tree DP convergecast."""
    nodes = csr.nodes
    emit = run.emit
    par = parent.tolist()
    su = state_u.tolist()
    sc = state_c.tolist()

    def fire(rows: Any, round_number: int) -> None:
        for v in rows.tolist():
            p = par[v]
            if p >= 0:
                emit({
                    "kind": "send", "round": round_number,
                    "node": nodes[v], "peer": nodes[p], "words": _WORDS,
                    "payload": ("DP", su[v], sc[v]),
                })
            emit({
                "kind": "halt", "round": round_number, "node": nodes[v],
            })

    fire(height_levels[0], 0)
    for r in range(1, len(height_levels)):
        for s in height_levels[r - 1].tolist():
            p = par[s]
            if p >= 0:
                emit({
                    "kind": "deliver", "round": r, "node": nodes[p],
                    "peer": nodes[s], "words": _WORDS,
                    "sent_round": r - 1, "tag": "DP",
                })
        fire(height_levels[r], r)


# ---------------------------------------------------------------------------
# Nearest-dominator wave
# ---------------------------------------------------------------------------

def nearest_dominator_wave(
    csr: CSRAdjacency, owner: Any, in_dom: Any, k: int
) -> Tuple[Any, Any, RunMetrics]:
    """k-round multi-source wave within clusters.

    Returns ``(label, dist, metrics)`` where ``label[v]`` is the
    dominator id ``v`` adopts (−1 if the wave never reached it — which
    the drivers turn into the reference ``RuntimeError``) and ``dist``
    the adoption round.  ``owner`` assigns each row a cluster index;
    messages travel only over intra-cluster edges, exactly like the
    per-cluster subgraphs of the reference driver.  Everything halts at
    round ``k`` off the wakeup schedule, so rounds = ``k`` regardless
    of when the wave dies out.
    """
    n = csr.n
    label = np.where(in_dom, csr.ids, np.int64(-1))
    dist = np.where(in_dom, np.int64(0), np.int64(-1))
    sources, targets = _edge_endpoints(csr)
    internal = owner[sources] == owner[targets]
    deg_in = np.bincount(sources[internal], minlength=n)
    per_round = np.zeros(k + 1, dtype=np.int64)
    frontier = np.flatnonzero(in_dom)
    big = np.iinfo(np.int64).max
    for d in range(1, k + 1):
        if frontier.size == 0:
            break
        # The distance-(d−1) adopters broadcast on round d−1 (d−1 < k
        # inside this loop), to every in-cluster neighbour.
        per_round[d - 1] = int(deg_in[frontier].sum())
        s, t = csr.gather_edges(frontier)
        keep = owner[s] == owner[t]
        s, t = s[keep], t[keep]
        fresh = dist[t] < 0
        s, t = s[fresh], t[fresh]
        if t.size == 0:
            frontier = np.empty(0, dtype=np.int64)
            continue
        best = np.full(n, big, dtype=np.int64)
        np.minimum.at(best, t, label[s])
        frontier = np.unique(t)
        label[frontier] = best[frontier]
        dist[frontier] = d
    messages = int(per_round.sum())
    metrics = RunMetrics()
    metrics.rounds = k
    metrics.traffic.messages = messages
    metrics.traffic.total_words = _WORDS * messages
    metrics.traffic.max_words = _WORDS if messages else 0
    metrics.traffic.per_round = {
        r: int(c) for r, c in enumerate(per_round) if c
    }
    metrics.all_halted = True
    metrics.halted_nodes = n
    return label, dist, metrics


def replay_wave(
    run: DenseRun, csr: CSRAdjacency, label: Any, dist: Any, in_dom: Any,
    k: int,
) -> None:
    """Byte-exact event replay of the single-network dominator wave."""
    nodes = csr.nodes
    emit = run.emit
    n = csr.n
    if k == 0:
        # The script returns during setup: every node halts at round 0.
        for v in range(n):
            emit({"kind": "halt", "round": 0, "node": nodes[v]})
        return
    dom = in_dom.tolist()
    lab = label.tolist()
    # Setup sweep, index order: dominators broadcast, then every node
    # books its round-k wakeup.
    for v in range(n):
        if dom[v]:
            payload = ("DOM", nodes[v], 1)
            for t in csr.neighbors_of(v).tolist():
                emit({
                    "kind": "send", "round": 0, "node": nodes[v],
                    "peer": nodes[t], "words": _WORDS, "payload": payload,
                })
        emit({"kind": "wakeup", "round": 0, "node": nodes[v], "target": k})
    # Rows grouped by adoption round; index 0 holds the unreached.
    by_dist = _group_by_level(dist + 1, k + 2)
    for r in range(1, k + 1):
        for s in by_dist[r].tolist():  # adopters at r−1 broadcast there
            sid = nodes[s]
            for t in csr.neighbors_of(s).tolist():
                emit({
                    "kind": "deliver", "round": r, "node": nodes[t],
                    "peer": sid, "words": _WORDS,
                    "sent_round": r - 1, "tag": "DOM",
                })
        if r < k:
            for v in by_dist[r + 1].tolist():
                payload = ("DOM", lab[v], r + 1)
                for t in csr.neighbors_of(v).tolist():
                    emit({
                        "kind": "send", "round": r, "node": nodes[v],
                        "peer": nodes[t], "words": _WORDS,
                        "payload": payload,
                    })
    # Round k: the wakeup matures everywhere; all nodes write outputs
    # and halt, in index order.
    for v in range(n):
        emit({"kind": "halt", "round": k, "node": nodes[v]})


# ---------------------------------------------------------------------------
# tree_kdominating_set kernels (single tree, genuine trace replay)
# ---------------------------------------------------------------------------

class TreeKDomPlan:
    def __init__(self, csr, parent, heights, height_levels):
        self.csr = csr
        self.parent = parent
        self.heights = heights
        self.height_levels = height_levels


def plan_tree_kdom(graph, root, parent_of) -> Optional[TreeKDomPlan]:
    """Precompute the DP structure, or ``None`` when the parent map
    falls outside the dense contract (the reference engine then handles
    the input, including its failure modes)."""
    csr = csr_adjacency(graph)
    if root not in csr.index:
        return None
    parent = plan_parent_rows(csr, root, parent_of)
    if parent is None:
        return None
    grown = forest_heights(parent, csr.n)
    if grown is None:
        return None
    heights, _depth = grown
    return TreeKDomPlan(
        csr, parent, heights,
        _group_by_level(heights, int(heights.max()) + 1),
    )


def dense_kdom_dp_run(graph, plan: TreeKDomPlan, k: int) -> Tuple[Any, DenseRun]:
    """The DP stage as a network-shaped run; returns (in_dom, run)."""
    run = DenseRun(graph)
    in_dom, state_u, state_c = kdom_dp(plan.parent, plan.height_levels, k)
    _adopt_metrics(run, dp_metrics(plan.parent, plan.heights))
    flags = in_dom.tolist()
    nodes = plan.csr.nodes
    run.set_outputs_factory(
        lambda: {
            v: {"in_dominating_set": f} for v, f in zip(nodes, flags)
        }
    )
    if run.observed:
        replay_dp(
            run, plan.csr, plan.parent, plan.height_levels,
            state_u, state_c,
        )
    return in_dom, run


def dense_wave_run(
    graph, plan: TreeKDomPlan, in_dom: Any, k: int
) -> Tuple[Any, Any, DenseRun]:
    """The partition-wave stage; returns (label, dist, run)."""
    run = DenseRun(graph)
    csr = plan.csr
    owner = np.zeros(csr.n, dtype=np.int64)  # one cluster: the tree
    label, dist, metrics = nearest_dominator_wave(csr, owner, in_dom, k)
    _adopt_metrics(run, metrics)
    labels = label.tolist()
    dists = dist.tolist()
    nodes = csr.nodes

    def build_outputs() -> Dict[Any, Dict[str, Any]]:
        return {
            v: {
                "dominator": None if lv < 0 else lv,
                "dominator_distance": None if dv < 0 else dv,
            }
            for v, lv, dv in zip(nodes, labels, dists)
        }

    run.set_outputs_factory(build_outputs)
    if run.observed:
        replay_wave(run, csr, label, dist, in_dom, k)
    return label, dist, run


# ---------------------------------------------------------------------------
# fastdom_tree kernels (cluster forest)
# ---------------------------------------------------------------------------

def cluster_arrays(
    csr: CSRAdjacency, partition, t_parent
) -> Tuple[Any, Any, List[Any]]:
    """Owner and in-cluster-parent arrays for a cluster partition.

    ``owner[row]`` is the cluster's index in iteration order;
    ``parent[row]`` is the row of ``t_parent`` when both live in the
    same cluster, else −1 (the cluster's sub-root) — exactly the
    ``sub_parent`` maps the reference driver builds per cluster.
    """
    n = csr.n
    owner = np.full(n, -1, dtype=np.int64)
    clusters = list(partition)
    index = csr.index
    for ci, cluster in enumerate(clusters):
        for v in cluster.members:
            owner[index[v]] = ci
    parent = np.full(n, -1, dtype=np.int64)
    for v, p in t_parent.items():
        if p is None or v not in index:
            continue
        row = index[v]
        prow = index[p]
        if owner[row] == owner[prow]:
            parent[row] = prow
    return owner, parent, clusters


def partition_from_labels(csr: CSRAdjacency, label: Any):
    """Build the output :class:`~repro.graphs.partition.Partition` from
    a per-row dominator-id array, grouping rows by label in one argsort
    instead of a python dict pass over every node.  Every dominator
    labels itself, so each group contains its centre."""
    from ...graphs.partition import Cluster, Partition

    order = np.argsort(label, kind="stable")
    sorted_labels = label[order]
    cuts = np.flatnonzero(np.diff(sorted_labels)) + 1
    starts = np.concatenate(([0], cuts)).tolist()
    ends = np.concatenate((cuts, [order.shape[0]])).tolist()
    rows = order.tolist()
    centers = sorted_labels[np.concatenate(([0], cuts))].tolist()
    nodes = csr.nodes
    return Partition(
        Cluster._owning(center, {nodes[r] for r in rows[a:b]})
        for center, a, b in zip(centers, starts, ends)
    )


def dense_cluster_domination(
    csr: CSRAdjacency, owner: Any, parent: Any, k: int
) -> Tuple[Any, RunMetrics]:
    """All per-cluster DP runs at once; returns (in_dom, merged metrics)."""
    grown = forest_heights(parent, csr.n)
    if grown is None:  # pragma: no cover - clusters are subtrees
        raise ValueError("cluster parent map contains a cycle")
    heights, _depth = grown
    levels = _group_by_level(heights, int(heights.max()) + 1)
    in_dom, _u, _c = kdom_dp(parent, levels, k)
    return in_dom, dp_metrics(parent, heights)


# ---------------------------------------------------------------------------
# Balanced stage (Small-Dom-Set on the contracted forest)
# ---------------------------------------------------------------------------

def _bit_index(low: Any) -> Any:
    """Index of the single set bit in each (power-of-two) element."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(low - 1).astype(np.int64)
    # Powers of two are exact in float64 up to 2^62.
    return np.log2(low.astype(np.float64)).astype(np.int64)


def dense_balanced_on_forest(
    tops: List[Any],
    contracted_parents: Dict[Any, Optional[Any]],
    id_bound: int,
) -> Tuple[Dict[Any, Any], int]:
    """``Small-Dom-Set`` on a contracted forest, as array rounds.

    ``tops`` must be ascending (``ContractedGraph.nodes`` order);
    ``contracted_parents`` maps each top to its parent top or ``None``.
    Returns ``(center map, virtual round count)`` — byte-identical to
    ``run_balanced_dom_on_forest``'s ``output_field("dominator")`` and
    the virtual network's ``metrics.rounds``.
    """
    n = len(tops)
    ids = np.asarray(tops, dtype=np.int64)
    index = {v: i for i, v in enumerate(tops)}
    parent = np.full(n, -1, dtype=np.int64)
    for i, v in enumerate(tops):
        p = contracted_parents.get(v)
        if p is not None:
            parent[i] = index[p]
    dominator, rounds = balanced_rows(ids, parent, id_bound)
    center_map = dict(zip(tops, dominator.tolist()))
    return center_map, rounds


def balanced_rows(
    ids: Any, parent: Any, id_bound: int
) -> Tuple[Any, int]:
    """Array core of :func:`dense_balanced_on_forest`: ascending int64
    ``ids``, ``parent`` as position indices (−1 = root).  Returns the
    dominator *id* per position and the virtual round count."""
    n = ids.shape[0]
    nr_rows = np.flatnonzero(parent >= 0)
    pidx = parent[nr_rows]
    root_rows = parent < 0
    has_children = np.zeros(n, dtype=bool)
    has_children[pidx] = True
    isolated = root_rows & ~has_children

    # -- Cole–Vishkin six-colouring ------------------------------------------
    colors = ids.copy()
    total_steps = cv_iterations(max(n, id_bound, 1))
    for _step in range(total_steps):
        new = np.empty_like(colors)
        new[root_rows] = colors[root_rows] & 1
        c = colors[nr_rows]
        diff = c ^ colors[pidx]
        low = diff & -diff
        i = _bit_index(low)
        new[nr_rows] = 2 * i + ((c >> i) & 1)
        colors = new

    # -- shift-down to three colours -----------------------------------------
    for target in (5, 4, 3):
        pre = colors
        post = np.empty_like(pre)
        post[root_rows] = np.where(pre[root_rows] == 0, 1, 0)
        post[nr_rows] = pre[pidx]
        recolor = np.flatnonzero(post == target)  # roots end <= 1: never
        if recolor.size:
            used_parent = post[parent[recolor]]
            # All of a node's children adopt *its* pre-shift colour.
            used_child = np.where(has_children[recolor], pre[recolor], -1)
            pick = np.full(recolor.shape[0], 2, dtype=np.int64)
            pick[(used_parent != 1) & (used_child != 1)] = 1
            pick[(used_parent != 0) & (used_child != 0)] = 0
            post[recolor] = pick
        colors = post

    # -- maximal matching (three colour phases) ------------------------------
    partner = np.full(n, -1, dtype=np.int64)
    for c in (0, 1, 2):
        cand = nr_rows[
            (partner[nr_rows] < 0)
            & (colors[nr_rows] == c)
            & (partner[parent[nr_rows]] < 0)
        ]
        if cand.size == 0:
            continue
        # Ascending ids <=> ascending rows, so the reference's
        # smallest-id winner is a row-wise scatter-min.
        best = np.full(n, n, dtype=np.int64)
        np.minimum.at(best, parent[cand], cand)
        acceptors = np.flatnonzero(best < n)
        winners = best[acceptors]
        partner[acceptors] = winners
        partner[winners] = acceptors

    # -- star partition -------------------------------------------------------
    matched = partner >= 0
    big = np.iinfo(np.int64).max
    # Contracted adjacency = the parent relation, so the smallest
    # (matched, by maximality) neighbour is min(parent id, child ids).
    min_neighbor = np.full(n, big, dtype=np.int64)
    np.minimum.at(min_neighbor, pidx, ids[nr_rows])
    min_neighbor[nr_rows] = np.minimum(min_neighbor[nr_rows], ids[pidx])
    dominator = np.empty(n, dtype=np.int64)
    in_dom = np.zeros(n, dtype=bool)
    unmatched = ~matched & ~isolated
    dominator[unmatched] = min_neighbor[unmatched]
    got = np.zeros(n, dtype=bool)
    attach_rows = np.flatnonzero(unmatched)
    if attach_rows.size:
        got[np.searchsorted(ids, min_neighbor[attach_rows])] = True
    partner_got = np.zeros(n, dtype=bool)
    m_rows = np.flatnonzero(matched)
    partner_got[m_rows] = got[partner[m_rows]]
    own = matched & got
    in_dom[own] = True
    dominator[own] = ids[own]
    via = matched & ~got & partner_got
    dominator[via] = ids[partner[via]]
    both = matched & ~got & ~partner_got
    center = np.minimum(ids[both], ids[partner[both]])
    dominator[both] = center
    in_dom[both] = center == ids[both]
    in_dom[isolated] = True
    dominator[isolated] = ids[isolated]

    return dominator, total_steps + _BALANCED_EXTRA_ROUNDS
