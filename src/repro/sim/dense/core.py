"""Shared plumbing for the dense (numpy) execution backend.

The dense backend executes *regular* synchronous rounds as whole-array
operations instead of per-node Python dispatch (see
docs/performance.md, "The dense backend").  This module holds what
every dense kernel needs:

* the guarded numpy import — the reference engine must import and run
  without numpy, so ``np`` is ``None`` when the package is missing and
  :func:`require_numpy` turns that into the structured
  :class:`DenseUnavailable` error;
* :class:`DenseRun`, the network-shaped result object a dense kernel
  stands in place of a :class:`~repro.sim.network.Network`: it
  registers with the ambient observation session exactly like a real
  network (same run-id ordering), carries the final
  :class:`~repro.sim.metrics.RunMetrics`, and answers the attribute
  reads the obs layer performs at session close (``current_round``,
  ``metrics``, ``n``).

Equivalence contract: a dense kernel must produce byte-identical
observable behaviour to the reference scheduler — same outputs, same
round count, same metrics, and (for kernels with replay emitters) the
same event stream.  Kernels that cannot honour that contract in some
configuration fall back to the reference engine instead of
approximating (fallback rules in docs/performance.md).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

try:  # pragma: no cover - exercised via the no-numpy CI matrix entry
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..metrics import RunMetrics
from ...obs.session import bind as _obs_bind

#: True when numpy is importable; the one switch every entry point checks.
HAVE_NUMPY = np is not None


class DenseUnavailable(RuntimeError):
    """``backend="dense"`` was requested but cannot be honoured.

    Raised when numpy is not installed, or when the graph falls outside
    the dense backend's representable domain (non-integer node ids).
    The reference engine handles every such case; the error message
    says which backend to use instead.
    """

    def __init__(self, reason: str):
        super().__init__(
            f"dense backend unavailable: {reason} "
            f"(use the reference engine: drop backend='dense')"
        )
        self.reason = reason


def require_numpy() -> None:
    """Raise :class:`DenseUnavailable` when numpy is missing."""
    if np is None:
        raise DenseUnavailable(
            "numpy is not installed (pip install numpy, or install "
            "repro with its declared dependencies)"
        )


def as_int(value: Any) -> int:
    """Coerce a numpy scalar to a Python int (trace payloads and output
    dictionaries must hold plain scalars: ``json`` falls back to ``str``
    for ``np.int64``, which would break byte-identical traces)."""
    return int(value)


class DenseRun:
    """Network-shaped record of one dense kernel execution.

    Constructed *before* the kernel computes (mirroring
    ``Network.__init__``) so that, under an active observation session,
    the run id assigned by :meth:`repro.obs.Observation.register`
    matches the id the reference engine's network would have received
    at the same call site.  The kernel then fills in ``metrics`` /
    ``current_round`` / ``outputs`` and, when a tap is bound, replays
    the round-by-round event stream through :meth:`emit`.
    """

    def __init__(self, graph) -> None:
        self.graph = graph
        self.n = graph.num_nodes
        self.current_round = 0
        self.metrics = RunMetrics()
        self._outputs: Dict[Any, Dict[str, Any]] = {}
        self._outputs_factory: Optional[Any] = None
        self._obs = _obs_bind(self)

    # -- observation ---------------------------------------------------------
    @property
    def observed(self) -> bool:
        """True when a tap is bound (events must be replayed)."""
        return self._obs is not None

    def emit(self, event: Dict[str, Any]) -> None:
        obs = self._obs
        if obs is not None:
            obs.emit(event)

    # -- the Network result surface drivers read -----------------------------
    def set_outputs(self, outputs: Dict[Any, Dict[str, Any]]) -> None:
        self._outputs = outputs
        self._outputs_factory = None

    def set_outputs_factory(self, factory) -> None:
        """Defer per-node output-dict construction until someone asks —
        at n=10^6 the array results are cheap but a million small dicts
        are not, and the large-n drivers read arrays directly."""
        self._outputs_factory = factory

    def outputs(self) -> Dict[Any, Dict[str, Any]]:
        if self._outputs_factory is not None:
            self._outputs = self._outputs_factory()
            self._outputs_factory = None
        return self._outputs

    def output_field(self, key: str) -> Dict[Any, Any]:
        return {
            v: fields[key]
            for v, fields in self.outputs().items()
            if key in fields
        }

    def all_halted(self) -> bool:
        return self.metrics.all_halted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DenseRun(n={self.n}, rounds={self.current_round}, "
            f"messages={self.metrics.traffic.messages})"
        )


def finish_metrics(
    run: DenseRun,
    rounds: int,
    messages: int,
    total_words: int,
    max_words: int,
    per_round: Dict[int, int],
) -> RunMetrics:
    """Install final metrics on ``run`` exactly as the reference engine
    would have left them after a fault-free fully-halting execution."""
    metrics = run.metrics
    metrics.rounds = rounds
    metrics.traffic.messages = messages
    metrics.traffic.total_words = total_words
    metrics.traffic.max_words = max_words
    metrics.traffic.per_round = per_round
    metrics.all_halted = True
    metrics.halted_nodes = run.n
    run.current_round = rounds
    return metrics


def per_round_from_counts(counts) -> Dict[int, int]:
    """Convert a per-round message-count array into the engine's sparse
    ``{round: count}`` dict (zero rounds omitted, Python ints)."""
    return {
        r: int(c) for r, c in enumerate(counts) if c
    }
