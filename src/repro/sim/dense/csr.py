"""CSR adjacency: the dense backend's graph representation.

A :class:`CSRAdjacency` flattens a :class:`~repro.graphs.graph.Graph`
into three arrays — ``indptr`` (n+1 row offsets), ``indices`` (2m
neighbor slots, both directions of every edge), and optionally
``weights`` aligned with ``indices`` — plus the id/rank lookup tables
the kernels need to reproduce the reference engine's orderings:

* rows are laid out in *natural* node order (``sorted(graph.nodes)``),
  which is exactly the engine's node-index order and the order of
  ``Context.neighbors``, so per-row slices of ``indices`` enumerate
  neighbors the way ``NodeProgram.broadcast`` does;
* ``str_rank`` ranks node ids by ``str(id)`` — the tie-break the engine
  uses for inbox ordering and the primitives use for parent selection.
  For the non-negative integer ids the dense backend supports, string
  order equals (digit count, value) order, so the rank is a pure
  numpy lexsort instead of a megabyte of Python string churn.

Construction is O(m) vectorized work after one pass over the edge
iterator.  Because sweep workers replay the same generated graphs many
times, adjacencies are memoised in a small FIFO cache keyed by the
graph's :class:`~repro.graphs.graph.GraphProvenance` (spec, seed,
weight seed, subgraph members) — the provenance contract guarantees two
graphs with equal stamps are structurally identical, and mutation
clears the stamp, so a cached entry can never go stale.  Graphs without
provenance are simply rebuilt each time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .core import DenseUnavailable, np, require_numpy

#: FIFO capacity of the provenance-keyed cache.  Sweep workers cycle
#: through a handful of specs at a time; 8 covers a grid axis without
#: pinning hundred-megabyte adjacencies for the whole process lifetime.
_CACHE_CAPACITY = 8
_CACHE: "OrderedDict[Tuple, CSRAdjacency]" = OrderedDict()


@dataclass
class CSRAdjacency:
    """Compressed-sparse-row view of an undirected graph."""

    nodes: List[int]  # natural (sorted) order; row i <-> nodes[i]
    index: Dict[int, int]  # node id -> row
    indptr: Any  # int64[n+1]
    indices: Any  # int64[2m] neighbor rows, ascending within each row
    ids: Any  # int64[n] node ids, ids[i] == nodes[i]
    str_rank: Any  # int64[n]; str_rank[i] = rank of str(ids[i])
    rank_to_row: Any  # int64[n]; inverse permutation of str_rank
    weights: Optional[Any] = None  # float64[2m] aligned with indices
    degrees: Any = field(default=None)

    def __post_init__(self) -> None:
        if self.degrees is None:
            self.degrees = self.indptr[1:] - self.indptr[:-1]

    @property
    def n(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0]) // 2

    def neighbors_of(self, row: int) -> Any:
        """Neighbor rows of one row, ascending (natural order)."""
        return self.indices[self.indptr[row]: self.indptr[row + 1]]

    def gather_edges(self, rows: Any) -> Tuple[Any, Any]:
        """All directed edges out of ``rows``: ``(sources, targets)``
        flat arrays, sources repeated per degree, targets in natural
        order within each source.  The workhorse behind every
        gather/scatter round."""
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        sources = np.repeat(rows, counts)
        # Position of each flat slot inside its source's segment.
        ends = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            ends - counts, counts
        )
        targets = self.indices[np.repeat(starts, counts) + within]
        return sources, targets


def _natural_rows(graph) -> List[int]:
    try:
        nodes = sorted(graph.nodes)
    except TypeError as exc:
        raise DenseUnavailable(
            f"node ids are not mutually comparable ({exc})"
        )
    for v in nodes:
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise DenseUnavailable(
                f"node id {v!r} is not a non-negative int (the dense "
                f"backend's id-ranking requires integer ids)"
            )
    return nodes


def _string_rank(ids: Any) -> Tuple[Any, Any]:
    """Rank non-negative integer ids by ``str(id)`` (lexicographic).

    Scaling every id to a common decimal width makes integer order
    match character-by-character comparison ("15" < "8" because
    ``15·10^(W-2) < 8·10^(W-1)``); among ids where one string prefixes
    the other the scaled keys tie and the shorter string sorts first,
    which the digit count as secondary key reproduces.  All without
    materialising a single Python string.
    """
    n = ids.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if int(ids.max()) > 10**17:  # scaled key would overflow int64
        order = np.asarray(
            sorted(range(n), key=lambda i: str(int(ids[i]))),
            dtype=np.int64,
        )
    else:
        powers = 10 ** np.arange(1, 19, dtype=np.int64)
        digits = (
            np.searchsorted(powers, ids, side="right") + 1
        ).astype(np.int64)
        width = int(digits.max())
        scaled = ids * 10 ** (width - digits)
        order = np.lexsort((digits, scaled))  # = rows by str(id)
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    return rank, order


def build_csr(graph, with_weights: bool = False) -> CSRAdjacency:
    """Flatten ``graph`` into a fresh :class:`CSRAdjacency`."""
    require_numpy()
    nodes = _natural_rows(graph)
    n = len(nodes)
    index = {v: i for i, v in enumerate(nodes)}
    ids = np.asarray(nodes, dtype=np.int64) if n else np.empty(
        0, dtype=np.int64
    )
    m = graph.num_edges
    if m:
        flat = np.fromiter(
            (
                row
                for u, v in graph.edges()
                for row in (index[u], index[v])
            ),
            dtype=np.int64,
            count=2 * m,
        )
        src = np.concatenate((flat[0::2], flat[1::2]))
        dst = np.concatenate((flat[1::2], flat[0::2]))
        order = np.lexsort((dst, src))
        indices = dst[order]
        counts = np.bincount(src, minlength=n)
    else:
        order = None
        indices = np.empty(0, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
    indptr = np.empty(n + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(counts, out=indptr[1:])
    weights = None
    if with_weights and m:
        w = np.fromiter(
            (graph.weight(u, v) for u, v in graph.edges()),
            dtype=np.float64,
            count=m,
        )
        weights = np.concatenate((w, w))[order]
    str_rank, rank_to_row = _string_rank(ids)
    return CSRAdjacency(
        nodes=nodes,
        index=index,
        indptr=indptr,
        indices=indices,
        ids=ids,
        str_rank=str_rank,
        rank_to_row=rank_to_row,
        weights=weights,
    )


def _cache_key(graph, with_weights: bool) -> Optional[Tuple]:
    provenance = getattr(graph, "provenance", None)
    if provenance is None or provenance.spec is None:
        return None
    return (
        provenance.spec,
        provenance.seed,
        provenance.weight_seed,
        provenance.members,
        with_weights,
    )


def csr_adjacency(graph, with_weights: bool = False) -> CSRAdjacency:
    """CSR view of ``graph``, served from the provenance cache when the
    graph carries a provenance stamp (generated graphs do)."""
    key = _cache_key(graph, with_weights)
    if key is not None:
        hit = _CACHE.get(key)
        if hit is not None:
            _CACHE.move_to_end(key)
            return hit
    csr = build_csr(graph, with_weights=with_weights)
    if key is not None:
        _CACHE[key] = csr
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)
    return csr


def cache_clear() -> None:
    """Drop every cached adjacency (test isolation hook)."""
    _CACHE.clear()


def cache_info() -> Dict[str, int]:
    return {"entries": len(_CACHE), "capacity": _CACHE_CAPACITY}
