"""Sequential composition of distributed stages.

The paper's algorithms are sequential compositions ("First, execute
Procedure SimpleMST ... Next, apply DOM_Partition ... Finally, apply
DiamDOM").  :class:`Orchestrator` packages the recurring driver
pattern: run a stage on a network, harvest its outputs, feed them to
the next stage's factory, and account rounds stage by stage.

Stages come in three flavours:

* a **network stage** — a program factory executed on a topology
  (rounds = the run's rounds);
* a **parallel stage** — disjoint sub-runs executed simultaneously
  (rounds = the maximum);
* a **local stage** — pure bookkeeping on collected outputs (0 rounds),
  modelling computation that happens inside nodes between protocols.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple

from .network import DEFAULT_MAX_ROUNDS, Network, ProgramFactory
from .runner import StagedRun, run_in_parallel


class Orchestrator:
    """Drives a pipeline of distributed and local stages.

    ``state`` is a dictionary threaded through the stages; network
    stages store their outputs under the stage name.
    """

    def __init__(self) -> None:
        self.staged = StagedRun()
        self.state: Dict[str, Any] = {}
        self._log: List[str] = []

    # -- stages ------------------------------------------------------------
    def run_stage(
        self,
        name: str,
        graph,
        factory_builder: Callable[[Dict[str, Any]], ProgramFactory],
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        word_limit: int = 8,
    ) -> Network:
        """Execute one network stage; outputs land in ``state[name]``."""
        network = Network(graph, word_limit=word_limit)
        factory = factory_builder(self.state)
        metrics = network.run(factory, max_rounds=max_rounds)
        self.staged.record(name, metrics)
        self.state[name] = network.outputs()
        self._log.append(f"{name}: {metrics.rounds} rounds")
        return network

    def run_parallel_stage(
        self,
        name: str,
        runs: Iterable[Tuple[Network, ProgramFactory]],
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> List[Network]:
        """Execute disjoint sub-runs simultaneously (max-rounds cost)."""
        networks, combined = run_in_parallel(runs, max_rounds=max_rounds)
        self.staged.record(name, combined)
        self.state[name] = [net.outputs() for net in networks]
        self._log.append(f"{name}: {combined.rounds} rounds (parallel)")
        return networks

    def run_local_stage(
        self, name: str, fn: Callable[[Dict[str, Any]], Any]
    ) -> Any:
        """Zero-round bookkeeping between protocols."""
        result = fn(self.state)
        self.state[name] = result
        self._log.append(f"{name}: local")
        return result

    def charge(self, name: str, rounds: int) -> None:
        """Account rounds for work modelled analytically (e.g. a known
        O(k) wave whose message-level run adds nothing)."""
        self.staged.add_rounds(name, rounds)
        self._log.append(f"{name}: {rounds} rounds (charged)")

    # -- inspection ----------------------------------------------------------
    @property
    def total_rounds(self) -> int:
        return self.staged.total_rounds

    def breakdown(self) -> Dict[str, int]:
        return self.staged.breakdown()

    def log(self) -> List[str]:
        return list(self._log)
