"""Run metrics for the CONGEST simulator.

The paper's complexity claims are about *rounds* (synchronous time
units).  The simulator therefore reports round counts as the primary
measurement, alongside message/word traffic so benchmarks can also check
the congestion behaviour the paper reasons about informally.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterable, Optional

from .model import MessageStats


@dataclass
class RunMetrics:
    """Measurements from one synchronous execution."""

    #: Number of rounds executed (round 0 = ``on_start`` sweep included).
    rounds: int = 0
    #: Message traffic statistics.
    traffic: MessageStats = dataclass_field(default_factory=MessageStats)
    #: True if the run ended because every node halted (vs quiescence).
    all_halted: bool = False
    #: Number of nodes that had halted when the run ended.
    halted_nodes: int = 0
    #: Fault-injection counters (all zero on fault-free runs).
    dropped_messages: int = 0
    duplicated_messages: int = 0
    delayed_messages: int = 0
    crashed_nodes: int = 0

    @property
    def messages(self) -> int:
        return self.traffic.messages

    @property
    def total_words(self) -> int:
        return self.traffic.total_words

    @property
    def max_message_words(self) -> int:
        return self.traffic.max_words

    def merged_with(self, other: "RunMetrics") -> "RunMetrics":
        """Sequential composition: rounds add, traffic accumulates.

        ``other`` executes after ``self``, so its per-round traffic
        profile is shifted by ``self.rounds`` before merging — a phase
        breakdown over the composite timeline survives composition
        instead of being silently discarded.

        Halt accounting: the repository's staged drivers build a fresh
        network per stage, so ``halted_nodes`` counts halt events
        *across* stages and therefore sums (it used to be overwritten
        with only ``other``'s value, silently dropping earlier-stage
        halts from :attr:`StagedRun.combined`).  ``all_halted`` reflects
        the final stage: the composite "ended halted" iff its last
        stage did.
        """
        merged = RunMetrics()
        merged.rounds = self.rounds + other.rounds
        merged.traffic.messages = self.traffic.messages + other.traffic.messages
        merged.traffic.total_words = (
            self.traffic.total_words + other.traffic.total_words
        )
        merged.traffic.max_words = max(
            self.traffic.max_words, other.traffic.max_words
        )
        merged.traffic.per_round = dict(self.traffic.per_round)
        shift = self.rounds
        for round_number, count in other.traffic.per_round.items():
            shifted = round_number + shift
            merged.traffic.per_round[shifted] = (
                merged.traffic.per_round.get(shifted, 0) + count
            )
        merged.all_halted = other.all_halted
        merged.halted_nodes = self.halted_nodes + other.halted_nodes
        merged.dropped_messages = self.dropped_messages + other.dropped_messages
        merged.duplicated_messages = (
            self.duplicated_messages + other.duplicated_messages
        )
        merged.delayed_messages = self.delayed_messages + other.delayed_messages
        merged.crashed_nodes = self.crashed_nodes + other.crashed_nodes
        return merged

    @classmethod
    def merge(cls, runs: "Iterable[RunMetrics]") -> "RunMetrics":
        """Parallel composition over vertex-disjoint runs.

        Rounds take the maximum (the runs execute simultaneously);
        traffic, halt counts and fault counters are summed; the
        composite halted iff every constituent run halted **and there
        was at least one run**.  An empty composition returns the
        zero/default metrics (``all_halted=False``): the partition
        drivers merge per-cluster lists, and an empty cluster list must
        not vacuously claim a fully-halted execution.
        """
        merged = cls()
        seen_any = False
        merged.all_halted = True
        for metrics in runs:
            seen_any = True
            merged.rounds = max(merged.rounds, metrics.rounds)
            merged.traffic.messages += metrics.traffic.messages
            merged.traffic.total_words += metrics.traffic.total_words
            merged.traffic.max_words = max(
                merged.traffic.max_words, metrics.traffic.max_words
            )
            for round_number, count in metrics.traffic.per_round.items():
                merged.traffic.per_round[round_number] = (
                    merged.traffic.per_round.get(round_number, 0) + count
                )
            merged.all_halted = merged.all_halted and metrics.all_halted
            merged.halted_nodes += metrics.halted_nodes
            merged.dropped_messages += metrics.dropped_messages
            merged.duplicated_messages += metrics.duplicated_messages
            merged.delayed_messages += metrics.delayed_messages
            merged.crashed_nodes += metrics.crashed_nodes
        if not seen_any:
            merged.all_halted = False
        return merged

    # -- JSON transport (worker results, sweep stores) ---------------------
    def to_dict(self, per_round: bool = True) -> Dict[str, object]:
        """A JSON-serializable snapshot of these metrics.

        ``per_round=False`` drops the per-round traffic profile — sweep
        result rows keep only the aggregate numbers so stores stay
        small.  Round-trips through :meth:`from_dict`.
        """
        data: Dict[str, object] = {
            "rounds": self.rounds,
            "messages": self.traffic.messages,
            "total_words": self.traffic.total_words,
            "max_words": self.traffic.max_words,
            "all_halted": self.all_halted,
            "halted_nodes": self.halted_nodes,
            "dropped_messages": self.dropped_messages,
            "duplicated_messages": self.duplicated_messages,
            "delayed_messages": self.delayed_messages,
            "crashed_nodes": self.crashed_nodes,
        }
        if per_round:
            data["per_round"] = {
                str(r): count for r, count in sorted(self.traffic.per_round.items())
            }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunMetrics":
        """Rebuild metrics written by :meth:`to_dict` (JSON keys for the
        per-round profile come back as strings and are re-int-ed)."""
        metrics = cls()
        metrics.rounds = int(data.get("rounds", 0))
        metrics.traffic.messages = int(data.get("messages", 0))
        metrics.traffic.total_words = int(data.get("total_words", 0))
        metrics.traffic.max_words = int(data.get("max_words", 0))
        metrics.all_halted = bool(data.get("all_halted", False))
        metrics.halted_nodes = int(data.get("halted_nodes", 0))
        metrics.dropped_messages = int(data.get("dropped_messages", 0))
        metrics.duplicated_messages = int(data.get("duplicated_messages", 0))
        metrics.delayed_messages = int(data.get("delayed_messages", 0))
        metrics.crashed_nodes = int(data.get("crashed_nodes", 0))
        per_round = data.get("per_round")
        if per_round:
            metrics.traffic.per_round = {
                int(r): int(count) for r, count in per_round.items()
            }
        return metrics


@dataclass
class PhaseBreakdown:
    """Per-phase round accounting for composite algorithms.

    Composite procedures (``FastDOM_T``, ``Fast-MST``, ...) are sequential
    compositions of sub-algorithms; benchmarks report where the rounds
    went, mirroring the paper's per-stage analysis.
    """

    phases: Dict[str, int] = dataclass_field(default_factory=dict)

    def add(self, name: str, rounds: int) -> None:
        self.phases[name] = self.phases.get(name, 0) + rounds

    @property
    def total_rounds(self) -> int:
        return sum(self.phases.values())

    def dominant_phase(self) -> Optional[str]:
        if not self.phases:
            return None
        return max(self.phases, key=lambda name: self.phases[name])

    def as_table(self) -> str:
        width = max((len(name) for name in self.phases), default=5)
        lines = [f"{'phase'.ljust(width)}  rounds"]
        for name, rounds in self.phases.items():
            lines.append(f"{name.ljust(width)}  {rounds}")
        lines.append(f"{'TOTAL'.ljust(width)}  {self.total_rounds}")
        return "\n".join(lines)
