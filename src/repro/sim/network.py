"""The synchronous CONGEST network simulator.

:class:`Network` owns a topology and drives a set of
:class:`~repro.sim.program.NodeProgram` instances in lockstep rounds,
enforcing the communication model the paper assumes:

* messages carry ``O(log n)`` bits (a constant number of words);
* a node sends at most one message per incident edge per round;
* messages sent in round ``t`` are delivered at the start of round
  ``t + 1``;
* nodes may only talk to graph neighbours.

Any violation raises, so a green test suite certifies model compliance.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .errors import (
    CongestionViolation,
    HaltedNodeActed,
    MessageTooLarge,
    NotANeighbor,
    RoundLimitExceeded,
)
from .faults import (
    STATE_CRASHED,
    STATE_HALTED,
    STATE_RUNNING,
    FaultInjector,
    RunReport,
)
from .metrics import RunMetrics
from .model import DEFAULT_WORD_LIMIT, Envelope, measure_words
from .program import Context, NodeProgram

#: Default round budget.  Generous; real algorithms in this repository
#: terminate far earlier, and hitting the budget indicates a livelock.
DEFAULT_MAX_ROUNDS = 1_000_000

ProgramFactory = Callable[[Context], NodeProgram]


class Network:
    """A synchronous message-passing network over a fixed topology.

    ``graph`` may be any object exposing ``nodes`` (iterable),
    ``neighbors(v)`` (iterable) and optionally ``weight(u, v)``;
    :class:`repro.graphs.Graph` is the canonical implementation.

    ``faults`` optionally attaches a :class:`~repro.sim.faults.
    FaultInjector`; when present, :meth:`run` returns a structured
    :class:`~repro.sim.faults.RunReport` instead of bare metrics and
    converts round-budget exhaustion into a report rather than an
    exception.  When absent, every fault-handling branch is skipped and
    the network behaves exactly as the fault-free simulator.
    """

    def __init__(
        self,
        graph,
        word_limit: int = DEFAULT_WORD_LIMIT,
        faults: Optional[FaultInjector] = None,
    ):
        self.graph = graph
        self.word_limit = word_limit
        self.faults = faults
        self.nodes: List[Any] = sorted(graph.nodes)
        self.n = len(self.nodes)
        self._neighbors: Dict[Any, tuple] = {
            v: tuple(sorted(graph.neighbors(v))) for v in self.nodes
        }
        self._neighbor_sets: Dict[Any, frozenset] = {
            v: frozenset(neighbors) for v, neighbors in self._neighbors.items()
        }
        self._weights: Dict[Any, Dict[Any, float]] = {}
        weight = getattr(graph, "weight", None)
        for v in self.nodes:
            if weight is None:
                self._weights[v] = {}
            else:
                self._weights[v] = {u: weight(v, u) for u in self._neighbors[v]}

        self.current_round = 0
        self.programs: Dict[Any, NodeProgram] = {}
        self.metrics = RunMetrics()
        # Messages sent this round, delivered next round.
        self._outbox: List[Envelope] = []
        # (sender, receiver) pairs used this round, for congestion checks.
        self._channels_used: set = set()

    # ------------------------------------------------------------------
    # Sending (called by programs through their context)
    # ------------------------------------------------------------------
    def _enqueue(self, sender, receiver, payload) -> None:
        program = self.programs.get(sender)
        if program is not None and program.halted:
            raise HaltedNodeActed(sender)
        if receiver not in self._neighbor_sets[sender]:
            raise NotANeighbor(sender, receiver)
        channel = (sender, receiver)
        if channel in self._channels_used:
            raise CongestionViolation(sender, receiver, self.current_round)
        words = measure_words(payload)
        if words > self.word_limit:
            raise MessageTooLarge(sender, receiver, payload, words, self.word_limit)
        self._channels_used.add(channel)
        envelope = Envelope(sender, receiver, payload, self.current_round)
        self._outbox.append(envelope)
        self.metrics.traffic.record(envelope)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def setup(self, program_factory: ProgramFactory) -> None:
        """Instantiate one program per node and run the round-0 sweep."""
        self.current_round = 0
        self.metrics = RunMetrics()
        self._outbox = []
        self._channels_used = set()
        self.programs = {}
        if self.faults is not None:
            self.faults.reset()
        for v in self.nodes:
            ctx = Context(v, self._neighbors[v], self._weights[v], self.n, self)
            self.programs[v] = program_factory(ctx)
        for v in self.nodes:
            program = self.programs[v]
            if not program.halted:
                program.on_start()

    def step(self) -> bool:
        """Execute one round; return True if the network is still live.

        A network is live while some node has not halted or a message is
        in flight toward a live node.
        """
        delivering = self._outbox
        self._outbox = []
        self._channels_used = set()
        self.current_round += 1
        crashed = None
        if self.faults is not None:
            self.faults.crashes_at(self.current_round)
            crashed = self.faults.crashed
            delivering = self.faults.deliveries(delivering, self.current_round)

        inboxes: Dict[Any, List[Envelope]] = {}
        for envelope in delivering:
            inboxes.setdefault(envelope.receiver, []).append(envelope)

        progressed = False
        for v in self.nodes:
            program = self.programs[v]
            if program.halted:
                continue
            if crashed is not None and v in crashed:
                continue
            inbox = inboxes.get(v, [])
            inbox.sort(key=lambda e: (str(e.sender), str(e.payload)))
            program.on_round(inbox)
            progressed = True
        self.metrics.rounds = self.current_round
        return progressed and not self.all_halted()

    def run(
        self,
        program_factory: Optional[ProgramFactory] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        stop_when_quiet: bool = False,
        until: Optional[Callable[["Network"], bool]] = None,
    ) -> "RunMetrics | RunReport":
        """Run to completion; return metrics (or a report under faults).

        Termination: every program halted; or ``until(network)`` becomes
        true; or (if ``stop_when_quiet``) a round passes with no message
        in flight and none sent.  Exceeding ``max_rounds`` raises
        :class:`RoundLimitExceeded` — unless faults are active, in which
        case a :class:`~repro.sim.faults.RunReport` with the error noted
        is returned instead (a crash leaving peers waiting forever is an
        expected outcome there, not a driver bug).
        """
        if program_factory is not None:
            self.setup(program_factory)
        faults = self.faults
        error: Optional[str] = None
        try:
            while not self._settled():
                if until is not None and until(self):
                    break
                if (
                    stop_when_quiet
                    and not self._outbox
                    and self.current_round > 0
                    and (faults is None or not faults.has_pending())
                ):
                    break
                if self.current_round >= max_rounds:
                    raise RoundLimitExceeded(max_rounds)
                self.step()
        except RoundLimitExceeded as exc:
            if faults is None:
                raise
            error = str(exc)
        self.metrics.rounds = self.current_round
        self.metrics.all_halted = self.all_halted()
        self.metrics.halted_nodes = sum(
            1 for p in self.programs.values() if p.halted
        )
        if faults is None:
            return self.metrics
        self.metrics.dropped_messages = faults.dropped
        self.metrics.duplicated_messages = faults.duplicated
        self.metrics.delayed_messages = faults.delayed
        self.metrics.crashed_nodes = len(faults.crashed)
        return self.report(error=error)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def all_halted(self) -> bool:
        if not self.programs:
            return False
        return all(program.halted for program in self.programs.values())

    def _settled(self) -> bool:
        """Run-loop termination: every node halted or crash-stopped."""
        if self.faults is None or not self.faults.crashed:
            return self.all_halted()
        if not self.programs:
            return False
        crashed = self.faults.crashed
        return all(
            program.halted or v in crashed
            for v, program in self.programs.items()
        )

    @property
    def crashed_nodes(self) -> frozenset:
        """Nodes crash-stopped so far (empty without an injector)."""
        if self.faults is None:
            return frozenset()
        return frozenset(self.faults.crashed)

    def report(self, error: Optional[str] = None) -> RunReport:
        """Build the structured :class:`RunReport` for a faulty run."""
        if self.faults is None:
            raise ValueError("report() requires a fault injector")
        crashed = self.faults.crashed
        node_states = {}
        for v, program in self.programs.items():
            if v in crashed:
                node_states[v] = STATE_CRASHED
            elif program.halted:
                node_states[v] = STATE_HALTED
            else:
                node_states[v] = STATE_RUNNING
        return RunReport(
            metrics=self.metrics,
            plan=self.faults.plan,
            node_states=node_states,
            completed=error is None and self._settled(),
            error=error,
        )

    def outputs(self) -> Dict[Any, Dict[str, Any]]:
        """Collect every node's ``output`` dictionary."""
        return {v: self.programs[v].output for v in self.nodes}

    def output_field(self, key: str) -> Dict[Any, Any]:
        """Collect one named output field across nodes (where present)."""
        return {
            v: program.output[key]
            for v, program in self.programs.items()
            if key in program.output
        }

    def neighbors(self, v) -> tuple:
        return self._neighbors[v]
