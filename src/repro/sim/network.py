"""The synchronous CONGEST network simulator.

:class:`Network` owns a topology and drives a set of
:class:`~repro.sim.program.NodeProgram` instances in lockstep rounds,
enforcing the communication model the paper assumes:

* messages carry ``O(log n)`` bits (a constant number of words);
* a node sends at most one message per incident edge per round;
* messages sent in round ``t`` are delivered at the start of round
  ``t + 1``;
* nodes may only talk to graph neighbours.

Any violation raises, so a green test suite certifies model compliance.

Engine internals (docs/performance.md has the full story):

* **Dense indexing** — node ids are mapped to contiguous integers
  ``0..n-1`` at construction; programs, inbox buckets and neighbour
  tables live in flat lists indexed by that integer, so the per-round
  sweep does list indexing instead of hash lookups on arbitrary ids.
* **Bucketed delivery** — each round's in-flight messages are appended
  directly into per-receiver buckets.  Deterministic inbox order (by
  ``str(sender)``, then ``str(payload)``) comes from a *precomputed*
  integer rank per (receiver, sender) pair instead of building string
  sort keys per message per round; the sort is skipped entirely for the
  overwhelmingly common zero/one-message inbox.
* **Active-set scheduling** — ``step()`` invokes only the programs that
  can possibly act this round: those that received a message, requested
  a wakeup, or declare ``TICK_EVERY_ROUND`` (the default, and the
  opt-out for round-counting protocols).  Message-driven algorithms
  therefore cost O(messages) engine work rather than O(n · rounds).
* **Incremental liveness** — the engine tracks the set of un-halted
  nodes as halts are observed, so ``all_halted()`` and the run loop's
  settledness check are O(1) instead of an O(n) rescan per round.

All of this is invisible to programs: scheduling mode, indexing and
bucketing change *how fast* a round executes, never *what* it computes
(see tests/sim/test_scheduler_equivalence.py).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from .errors import (
    ConfigurationError,
    CongestionViolation,
    HaltedNodeActed,
    MessageTooLarge,
    NotANeighbor,
    RoundLimitExceeded,
)
from .faults import (
    STATE_CRASHED,
    STATE_HALTED,
    STATE_RUNNING,
    FaultInjector,
    RunReport,
)
from .metrics import RunMetrics
from .model import DEFAULT_WORD_LIMIT, Envelope
from .program import Context, NodeProgram
from ..obs.session import Tap, bind as _obs_bind

#: Default round budget.  Generous; real algorithms in this repository
#: terminate far earlier, and hitting the budget indicates a livelock.
DEFAULT_MAX_ROUNDS = 1_000_000

#: Scheduling modes accepted by :class:`Network`.
SCHEDULING_MODES = ("active", "full")

ProgramFactory = Callable[[Context], NodeProgram]


class Network:
    """A synchronous message-passing network over a fixed topology.

    ``graph`` may be any object exposing ``nodes`` (iterable),
    ``neighbors(v)`` (iterable) and optionally ``weight(u, v)``;
    :class:`repro.graphs.Graph` is the canonical implementation.

    ``faults`` optionally attaches a :class:`~repro.sim.faults.
    FaultInjector`; when present, :meth:`run` returns a structured
    :class:`~repro.sim.faults.RunReport` instead of bare metrics and
    converts round-budget exhaustion into a report rather than an
    exception.  When absent, every fault-handling branch is skipped and
    the network behaves exactly as the fault-free simulator.

    ``scheduling`` selects the round scheduler: ``"active"`` (the
    default) honours each program's ``TICK_EVERY_ROUND`` declaration and
    skips idle message-driven programs; ``"full"`` forces the classic
    every-program-every-round sweep.  The two are observationally
    identical for correct programs — ``"full"`` exists as the reference
    the equivalence suite compares against (and as a big hammer when
    debugging a mis-declared program).  ``None`` falls back to
    :attr:`Network.default_scheduling`, which tests may patch to force a
    mode through drivers that build their networks internally.
    """

    #: Class-wide fallback for the ``scheduling`` constructor argument.
    default_scheduling = "active"

    def __init__(
        self,
        graph,
        word_limit: int = DEFAULT_WORD_LIMIT,
        faults: Optional[FaultInjector] = None,
        scheduling: Optional[str] = None,
    ):
        if scheduling is None:
            scheduling = type(self).default_scheduling
        if scheduling not in SCHEDULING_MODES:
            raise ConfigurationError(
                f"scheduling must be one of {SCHEDULING_MODES}, "
                f"got {scheduling!r}"
            )
        self.graph = graph
        self.word_limit = word_limit
        self.faults = faults
        self.scheduling = scheduling
        self.nodes: List[Any] = sorted(graph.nodes)
        self.n = len(self.nodes)
        # Dense indexing: node id -> contiguous index, in sorted order,
        # so iterating indices ascending IS the deterministic node sweep.
        self._index: Dict[Any, int] = {v: i for i, v in enumerate(self.nodes)}
        self._neighbors: Dict[Any, tuple] = {
            v: tuple(sorted(graph.neighbors(v))) for v in self.nodes
        }
        self._neighbor_sets: Dict[Any, frozenset] = {
            v: frozenset(neighbors) for v, neighbors in self._neighbors.items()
        }
        self._weights: Dict[Any, Dict[Any, float]] = {}
        weight = getattr(graph, "weight", None)
        for v in self.nodes:
            if weight is None:
                self._weights[v] = {}
            else:
                self._weights[v] = {u: weight(v, u) for u in self._neighbors[v]}
        # Delivery rank: position of each sender in the receiver's
        # neighbour list sorted by str(sender) — precomputed once, so
        # deterministic inbox ordering never builds string keys again.
        # (At most one message per channel per round, so ranking senders
        # fully orders a fault-free inbox.)
        self._rank: List[Dict[Any, int]] = [
            {u: rank for rank, u in enumerate(sorted(self._neighbors[v], key=str))}
            for v in self.nodes
        ]

        self.current_round = 0
        self.programs: Dict[Any, NodeProgram] = {}
        self.metrics = RunMetrics()
        # Messages sent this round, delivered next round.
        self._outbox: List[Envelope] = []
        # Dense (sender_idx * n + receiver_idx) keys used this round,
        # for congestion checks.
        self._channels_used: Set[int] = set()
        # Flat program table, parallel to self.nodes.
        self._progs: List[NodeProgram] = []
        # Per-receiver inbox buckets (index-parallel); buckets that
        # received something this round are listed in _touched and
        # replaced with fresh lists after the sweep (programs may keep
        # references to their inbox).
        self._inboxes: List[List[Envelope]] = []
        self._touched: List[int] = []
        # Scheduling state: indices that tick every round, indices not
        # yet halted, and requested wakeups keyed by target round.
        self._always: Set[int] = set()
        self._unhalted: Set[int] = set()
        self._wakeups: Dict[int, Set[int]] = {}
        self._crashed_idx: Set[int] = set()
        # Observability tap: None unless an observation session is
        # active (repro.obs.observe) or attach_subscriber() is called.
        # Every hook below is a single `is not None` check when off —
        # that is the whole no-subscriber overhead contract.
        self._obs: Optional[Tap] = _obs_bind(self)

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support for the process execution backend.

        Observability taps hold session and subscriber objects (file
        handles, collectors) that must not cross a process boundary;
        a network arrives in the worker unobserved.  Everything else —
        topology tables, scheduling state, fault injector — is plain
        picklable data.
        """
        state = self.__dict__.copy()
        state["_obs"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    def adopt_results(
        self,
        metrics: RunMetrics,
        outputs: Dict[Any, Dict[str, Any]],
        halted: Dict[Any, bool],
    ) -> None:
        """Install a completed run's results executed elsewhere.

        The process backend runs a pickled copy of this network in a
        worker and ships back only what drivers consume: final metrics,
        per-node ``output`` dictionaries and halt flags.  After
        adoption, :meth:`outputs`, :meth:`output_field` and
        :meth:`all_halted` answer exactly as if the run had happened
        here; transient engine state (inboxes, wakeups) is not
        transferred.
        """
        self.metrics = metrics
        self.current_round = metrics.rounds
        self.programs = {
            v: _CompletedProgram(outputs.get(v, {}), bool(halted.get(v)))
            for v in self.nodes
        }
        self._progs = [self.programs[v] for v in self.nodes]
        self._unhalted = {
            i for i, v in enumerate(self.nodes) if not self.programs[v].halted
        }
        self._always = set()
        self._wakeups = {}
        self._outbox = []

    def attach_subscriber(self, subscriber) -> Any:
        """Attach ``subscriber`` directly to this network's event stream.

        Works with or without an ambient :func:`repro.obs.observe`
        session; without one, the network gets a session-less tap with
        run id 0.  Returns the subscriber (handy for one-liners)."""
        if self._obs is None:
            self._obs = Tap(None, 0, [subscriber])
        else:
            self._obs.sinks.append(subscriber)
        return subscriber

    # ------------------------------------------------------------------
    # Sending (called by programs through their context)
    # ------------------------------------------------------------------
    def _enqueue(self, sender, receiver, payload) -> None:
        index = self._index
        si = index.get(sender)
        if si is not None:
            progs = self._progs
            if si < len(progs) and progs[si].halted:
                raise HaltedNodeActed(sender)
        if receiver not in self._neighbor_sets[sender]:
            raise NotANeighbor(sender, receiver)
        channel = si * self.n + index[receiver]
        used = self._channels_used
        if channel in used:
            raise CongestionViolation(sender, receiver, self.current_round)
        round_number = self.current_round
        envelope = Envelope(sender, receiver, payload, round_number)
        words = envelope.words  # measured once, at construction
        if words > self.word_limit:
            raise MessageTooLarge(sender, receiver, payload, words, self.word_limit)
        used.add(channel)
        self._outbox.append(envelope)
        # Traffic accounting, inlined from MessageStats.record: this is
        # the hottest statement in the send path.
        traffic = self.metrics.traffic
        traffic.messages += 1
        traffic.total_words += words
        if words > traffic.max_words:
            traffic.max_words = words
        per_round = traffic.per_round
        per_round[round_number] = per_round.get(round_number, 0) + 1
        obs = self._obs
        if obs is not None:
            obs.emit(
                {
                    "kind": "send",
                    "round": round_number,
                    "node": sender,
                    "peer": receiver,
                    "words": words,
                    "payload": payload,
                }
            )

    def request_wakeup(self, node, delay: int = 1) -> None:
        """Schedule ``node`` for invocation ``delay`` rounds from now
        even if it receives no message (the event-driven program's
        replacement for ticking every round)."""
        target = self.current_round + delay
        pending = self._wakeups.get(target)
        if pending is None:
            pending = self._wakeups[target] = set()
        pending.add(self._index[node])
        obs = self._obs
        if obs is not None:
            obs.emit(
                {
                    "kind": "wakeup",
                    "round": self.current_round,
                    "node": node,
                    "target": target,
                }
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def setup(self, program_factory: ProgramFactory) -> None:
        """Instantiate one program per node and run the round-0 sweep."""
        self.current_round = 0
        self.metrics = RunMetrics()
        self._outbox = []
        self._channels_used = set()
        self._wakeups = {}
        self._crashed_idx = set()
        self._touched = []
        if self.faults is not None:
            self.faults.reset()
        progs: List[NodeProgram] = []
        self.programs = {}
        for v in self.nodes:
            ctx = Context(v, self._neighbors[v], self._weights[v], self.n, self)
            program = program_factory(ctx)
            progs.append(program)
            self.programs[v] = program
        self._progs = progs
        self._inboxes = [[] for _ in range(self.n)]
        full_sweep = self.scheduling == "full"
        self._unhalted = set(range(self.n))
        self._always = {
            i
            for i, program in enumerate(progs)
            if full_sweep or program.TICK_EVERY_ROUND
        }
        for i, program in enumerate(progs):
            if not program.halted:
                program.on_start()
            if program.halted:
                self._note_halt(i)

    def _note_halt(self, i: int) -> None:
        """Sync scheduler state after observing ``programs[i].halted``."""
        if i in self._unhalted:
            self._unhalted.discard(i)
            obs = self._obs
            if obs is not None:
                obs.emit(
                    {
                        "kind": "halt",
                        "round": self.current_round,
                        "node": self.nodes[i],
                    }
                )
        self._always.discard(i)

    def _emit_faults(self, obs: Tap, plan_events, plan_mark: int) -> None:
        """Mirror FaultEvents recorded this round into the event stream.

        ``plan_index`` is the event's index in the run's
        :class:`~repro.sim.faults.FaultPlan`, so a trace line can be
        joined back to the replayable plan exactly.
        """
        for plan_index in range(plan_mark, len(plan_events)):
            fault = plan_events[plan_index]
            event = {
                "kind": fault.kind,
                "round": fault.round,
                "node": fault.node,
                "plan_index": plan_index,
            }
            if fault.target is not None:
                event["peer"] = fault.target
                event["seq"] = fault.seq
                event["detail"] = fault.detail
            obs.emit(event)

    def step(self) -> bool:
        """Execute one round; return True if the network is still live.

        A network is live while some node has not halted or a message is
        in flight toward a live node.
        """
        delivering = self._outbox
        self._outbox = []
        self._channels_used.clear()
        self.current_round += 1
        crashed_idx = self._crashed_idx
        obs = self._obs
        faulty = self.faults is not None
        if faulty:
            plan_events = self.faults.plan.events
            plan_mark = len(plan_events)
            for node in self.faults.crashes_at(self.current_round):
                i = self._index[node]
                crashed_idx.add(i)
                self._always.discard(i)
            delivering = self.faults.deliveries(delivering, self.current_round)
            if obs is not None and len(plan_events) > plan_mark:
                self._emit_faults(obs, plan_events, plan_mark)
        # Liveness before the sweep: some program un-halted and un-crashed
        # (the old engine's "did anything get invoked" bit, computed
        # without sweeping).
        unhalted = self._unhalted
        if crashed_idx:
            progressed = any(i not in crashed_idx for i in unhalted)
        else:
            progressed = bool(unhalted)

        # Bucketed delivery: append each envelope to its receiver's
        # bucket.  Buckets preserve arrival order; per-sender rank sorts
        # them deterministically below, but only when len > 1.
        index = self._index
        inboxes = self._inboxes
        touched = self._touched
        if obs is None:
            for envelope in delivering:
                ri = index[envelope.receiver]
                bucket = inboxes[ri]
                if not bucket:
                    touched.append(ri)
                bucket.append(envelope)
        else:
            # Observed twin of the loop above, kept separate so the
            # unobserved path pays nothing per message.
            round_number = self.current_round
            for envelope in delivering:
                ri = index[envelope.receiver]
                bucket = inboxes[ri]
                if not bucket:
                    touched.append(ri)
                bucket.append(envelope)
                obs.emit(
                    {
                        "kind": "deliver",
                        "round": round_number,
                        "node": envelope.receiver,
                        "peer": envelope.sender,
                        "words": envelope.words,
                        "sent_round": envelope.sent_round,
                        "tag": envelope.tag(),
                    }
                )

        # Active set: messages in, matured wakeups, always-tickers.
        active = self._wakeups.pop(self.current_round, None)
        if active is None:
            active = set(touched)
        else:
            active.update(touched)
        if self._always:
            active.update(self._always)

        progs = self._progs
        ranks = self._rank
        # Full-sweep rounds visit every index; skip the redundant sort.
        schedule = range(self.n) if len(active) == self.n else sorted(active)
        for i in schedule:
            program = progs[i]
            if program.halted:
                self._note_halt(i)
                continue
            if i in crashed_idx:
                continue
            inbox = inboxes[i]
            if len(inbox) > 1:
                rank = ranks[i]
                if faulty:
                    # Duplicates/delays can put two messages from one
                    # sender in the same inbox; break the tie exactly as
                    # the classic (str(sender), str(payload)) key did.
                    inbox.sort(key=lambda e: (rank[e.sender], str(e.payload)))
                else:
                    inbox.sort(key=lambda e: rank[e.sender])
            elif not inbox:
                inbox = []  # fresh list per invocation, as ever
            program.on_round(inbox)
            if program.halted:
                self._note_halt(i)
        if touched:
            for ri in touched:
                inboxes[ri] = []
            self._touched = []
        self.metrics.rounds = self.current_round
        return progressed and bool(self._unhalted)

    def run(
        self,
        program_factory: Optional[ProgramFactory] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        stop_when_quiet: bool = False,
        until: Optional[Callable[["Network"], bool]] = None,
    ) -> "RunMetrics | RunReport":
        """Run to completion; return metrics (or a report under faults).

        Termination: every program halted; or ``until(network)`` becomes
        true; or (if ``stop_when_quiet``) a round passes with no message
        in flight and none sent.  Exceeding ``max_rounds`` raises
        :class:`RoundLimitExceeded` — unless faults are active, in which
        case a :class:`~repro.sim.faults.RunReport` with the error noted
        is returned instead (a crash leaving peers waiting forever is an
        expected outcome there, not a driver bug).
        """
        if program_factory is not None:
            self.setup(program_factory)
        faults = self.faults
        error: Optional[str] = None
        try:
            while not self._settled():
                if until is not None and until(self):
                    break
                if (
                    stop_when_quiet
                    and not self._outbox
                    and not self._wakeups
                    and self.current_round > 0
                    and (faults is None or not faults.has_pending())
                ):
                    break
                if self.current_round >= max_rounds:
                    raise RoundLimitExceeded(max_rounds)
                self.step()
        except RoundLimitExceeded as exc:
            if faults is None:
                raise
            error = str(exc)
        self.metrics.rounds = self.current_round
        self.metrics.all_halted = self.all_halted()
        self.metrics.halted_nodes = sum(
            1 for p in self.programs.values() if p.halted
        )
        if faults is None:
            return self.metrics
        self.metrics.dropped_messages = faults.dropped
        self.metrics.duplicated_messages = faults.duplicated
        self.metrics.delayed_messages = faults.delayed
        self.metrics.crashed_nodes = len(faults.crashed)
        return self.report(error=error)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def all_halted(self) -> bool:
        if not self.programs:
            return False
        return not self._unhalted

    def _settled(self) -> bool:
        """Run-loop termination: every node halted or crash-stopped."""
        if not self.programs:
            return False
        unhalted = self._unhalted
        if not unhalted:
            return True
        if self.faults is None or not self._crashed_idx:
            return False
        return unhalted <= self._crashed_idx

    @property
    def crashed_nodes(self) -> frozenset:
        """Nodes crash-stopped so far (empty without an injector)."""
        if self.faults is None:
            return frozenset()
        return frozenset(self.faults.crashed)

    def report(self, error: Optional[str] = None) -> RunReport:
        """Build the structured :class:`RunReport` for a faulty run."""
        if self.faults is None:
            raise ValueError("report() requires a fault injector")
        crashed = self.faults.crashed
        node_states = {}
        for v, program in self.programs.items():
            if v in crashed:
                node_states[v] = STATE_CRASHED
            elif program.halted:
                node_states[v] = STATE_HALTED
            else:
                node_states[v] = STATE_RUNNING
        return RunReport(
            metrics=self.metrics,
            plan=self.faults.plan,
            node_states=node_states,
            completed=error is None and self._settled(),
            error=error,
        )

    def outputs(self) -> Dict[Any, Dict[str, Any]]:
        """Collect every node's ``output`` dictionary."""
        return {v: self.programs[v].output for v in self.nodes}

    def output_field(self, key: str) -> Dict[Any, Any]:
        """Collect one named output field across nodes (where present)."""
        return {
            v: program.output[key]
            for v, program in self.programs.items()
            if key in program.output
        }

    def neighbors(self, v) -> tuple:
        return self._neighbors[v]


class _CompletedProgram:
    """Stand-in program holding a worker run's per-node results.

    Exposes the two attributes drivers read after a run — ``output``
    and ``halted`` — so a parent-side :class:`Network` can answer
    output queries for an execution that happened in a worker process.
    """

    __slots__ = ("output", "halted")

    def __init__(self, output: Dict[str, Any], halted: bool) -> None:
        self.output = output
        self.halted = halted
