"""Algorithm ``FastDOM_T`` (§3.3, Theorem 3.2): small k-dominating sets
on trees in ``O(k log* n)`` rounds.

Composition, exactly as the paper:

1. ``DOM_Partition(k)`` partitions the tree into clusters with
   ``|C| >= k + 1`` and ``Rad(C) <= 5k + 2``;
2. a diameter-time k-dominating set procedure runs *inside every
   cluster in parallel* — O(k) rounds each, since cluster diameters are
   O(k);
3. the union of the per-cluster sets is the answer:
   ``|D| = sum |D_i| <= sum |C_i| / (k+1) = n / (k+1)``
   (Corollary 3.9(a)) and every node is within k of its cluster's
   dominator set (Corollary 3.9(b)).

The per-cluster procedure is selectable:

* ``method="kdom-dp"`` (default): the convergecast DP of
  :mod:`repro.core.kdom_tree` — exact minimum per cluster, hence the
  Lemma 2.1 bound, and always k-dominating.
* ``method="diamdom"``: the paper's census algorithm
  (:mod:`repro.core.diam_dom`) — faithful, but subject to reproduction
  note R1 (the chosen level class may fail to dominate on clusters with
  shallow leaves), in which case this driver raises.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..sim.network import Network
from ..sim.runner import StagedRun, run_in_parallel
from .diam_dom import DiamDOMProgram
from .kdom_tree import NearestDominatorProgram, TreeKDomProgram
from .partition_fast import dom_partition

METHODS = ("kdom-dp", "diamdom")


def fastdom_tree(
    tree: Graph,
    root: Any,
    t_parent: Dict[Any, Optional[Any]],
    k: int,
    method: str = "kdom-dp",
    backend: str = "inline",
    workers: Optional[int] = None,
    pool: Optional[Any] = None,
) -> Tuple[Set[Any], Partition, StagedRun]:
    """Run ``FastDOM_T`` on a rooted tree with ``n >= k + 1`` nodes.

    Returns (k-dominating set D, the radius-<=k partition P around D,
    per-stage round accounting).

    ``backend``/``workers`` select the execution backend for the
    per-cluster parallel stages (see :func:`repro.sim.run_in_parallel`):
    ``"process"`` really fans the vertex-disjoint clusters across
    cores, with identical results and metrics.  Both stages (cluster
    domination, then the nearest-dominator wave) run on *one* worker
    pool: ``pool`` if given, the ambient entered
    :class:`~repro.batch.pool.SharedPool` if any, else a pool opened
    here for the duration of the call.  When ``tree`` was built by a
    seeded generator, the cluster sub-networks carry rebuild provenance
    and ship to workers as specs, not pickled networks
    (:mod:`repro.batch.dispatch`).

    ``backend="dense"`` runs the whole pipeline as numpy array rounds
    (:mod:`repro.sim.dense.forest`): the partition's BalancedDOM stages,
    all per-cluster DP runs as one forest-wide kernel, and the
    nearest-dominator wave as k scatter-min rounds — identical
    dominators, partition, and stage accounting.  It applies to
    ``method="kdom-dp"`` without an active observation; otherwise the
    call transparently degrades to ``"inline"`` (the event engine is
    the only implementation of ``diamdom`` and of observed runs).
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}")
    if k == 0:
        # Degenerate: every node dominates itself.
        dominators = set(tree.nodes)
        partition = Partition.from_center_map({v: v for v in tree.nodes})
        return dominators, partition, StagedRun()

    if backend == "dense":
        from ..obs.session import current_observation
        from ..sim.dense import require_numpy

        require_numpy()
        if method == "kdom-dp" and current_observation() is None:
            return _fastdom_tree_dense(tree, root, t_parent, k)
        backend = "inline"

    own_pool = None
    if backend == "process" and pool is None:
        from ..batch.pool import SharedPool

        pool = SharedPool.current()
        if pool is None:
            own_pool = pool = SharedPool(workers)
    try:
        return _fastdom_tree_staged(
            tree, root, t_parent, k, method, backend, workers, pool
        )
    finally:
        if own_pool is not None:
            own_pool.close()


def _fastdom_tree_staged(
    tree: Graph,
    root: Any,
    t_parent: Dict[Any, Optional[Any]],
    k: int,
    method: str,
    backend: str,
    workers: Optional[int],
    pool: Optional[Any],
) -> Tuple[Set[Any], Partition, StagedRun]:
    clusters_partition, staged = dom_partition(tree, root, t_parent, k)

    dominators: Set[Any] = set()
    center_map: Dict[Any, Any] = {}

    # Per-cluster runs are vertex-disjoint, hence truly parallel; rounds
    # are the maximum over clusters (run_in_parallel semantics).
    dom_runs = []
    cluster_info = []
    for cluster in clusters_partition:
        sub = tree.subgraph(cluster.members)
        sub_parent = {
            v: (t_parent.get(v) if t_parent.get(v) in cluster.members else None)
            for v in cluster.members
        }
        sub_root = next(v for v, p in sub_parent.items() if p is None)
        network = Network(sub)
        if method == "kdom-dp":
            factory = _dp_factory(sub_root, sub_parent, k)
        else:
            factory = _diamdom_factory(sub_root, k)
        dom_runs.append((network, factory))
        cluster_info.append((cluster, sub, sub_parent, sub_root))
    networks, combined = run_in_parallel(
        dom_runs, backend=backend, workers=workers, pool=pool
    )
    staged.record("cluster-domination", combined)

    wave_runs = []
    for network, (cluster, sub, _sub_parent, _sub_root) in zip(
        networks, cluster_info
    ):
        flags = network.output_field("in_dominating_set")
        cluster_dominators = {v for v, flag in flags.items() if flag}
        if not cluster_dominators:
            raise RuntimeError(
                f"cluster {cluster.center} produced an empty dominating set"
            )
        dominators |= cluster_dominators
        wave_network = Network(sub)
        wave_runs.append(
            (
                wave_network,
                _wave_factory(cluster_dominators, k),
            )
        )
    wave_networks, wave_combined = run_in_parallel(
        wave_runs, backend=backend, workers=workers, pool=pool
    )
    staged.record("cluster-partition", wave_combined)

    for wave_network, (cluster, _sub, _p, _r) in zip(wave_networks, cluster_info):
        assignment = wave_network.output_field("dominator")
        for v, dom in assignment.items():
            if dom is None:
                raise RuntimeError(
                    f"node {v} found no dominator within {k} hops in its "
                    f"cluster; the per-cluster set is not k-dominating "
                    f"(reproduction note R1 applies to method='diamdom')"
                )
            center_map[v] = dom
    return dominators, Partition.from_center_map(center_map), staged


def _fastdom_tree_dense(
    tree: Graph,
    root: Any,
    t_parent: Dict[Any, Optional[Any]],
    k: int,
) -> Tuple[Set[Any], Partition, StagedRun]:
    from ..sim.dense.core import np
    from ..sim.dense.csr import csr_adjacency
    from ..sim.dense.forest import (
        dense_cluster_domination,
        nearest_dominator_wave,
        partition_from_labels,
    )

    clusters_partition, staged = dom_partition(
        tree, root, t_parent, k, backend="dense"
    )
    csr = csr_adjacency(tree)
    n = csr.n
    nodes = csr.nodes
    index = csr.index
    # Clusters are keyed by their centre's row — the DP and the wave
    # only compare owner labels for equality, so any injective labelling
    # works and the centre row avoids a python pass per cluster.
    center_of = clusters_partition.center_of
    owner = np.fromiter(
        (index[center_of[v]] for v in nodes), dtype=np.int64, count=n
    )
    t_parent_row = np.fromiter(
        (
            -1 if t_parent.get(v) is None else index[t_parent[v]]
            for v in nodes
        ),
        dtype=np.int64,
        count=n,
    )
    same_cluster = (t_parent_row >= 0) & (
        owner[np.maximum(t_parent_row, 0)] == owner
    )
    parent = np.where(same_cluster, t_parent_row, np.int64(-1))

    in_dom, dom_metrics = dense_cluster_domination(csr, owner, parent, k)
    staged.record("cluster-domination", dom_metrics)
    counts = np.bincount(owner[in_dom], minlength=n)
    for cluster in clusters_partition:
        if counts[index[cluster.center]] == 0:  # pragma: no cover - the DP never is
            raise RuntimeError(
                f"cluster {cluster.center} produced an empty dominating set"
            )
    dominators = {nodes[row] for row in np.flatnonzero(in_dom).tolist()}

    label, dist, wave_metrics = nearest_dominator_wave(csr, owner, in_dom, k)
    staged.record("cluster-partition", wave_metrics)
    if (label < 0).any():  # pragma: no cover - clusters have Rad <= k around D
        v = nodes[int(np.flatnonzero(label < 0)[0])]
        raise RuntimeError(
            f"node {v} found no dominator within {k} hops in its "
            f"cluster; the per-cluster set is not k-dominating "
            f"(reproduction note R1 applies to method='diamdom')"
        )
    return dominators, partition_from_labels(csr, label), staged


# Program factories are picklable callables (not closures) so the
# per-cluster runs can be shipped to worker processes under
# backend="process".
class _dp_factory:
    def __init__(self, sub_root, sub_parent, k):
        self.sub_root, self.sub_parent, self.k = sub_root, sub_parent, k

    def __call__(self, ctx):
        return TreeKDomProgram(ctx, self.sub_root, self.sub_parent, self.k)


class _diamdom_factory:
    def __init__(self, sub_root, k):
        self.sub_root, self.k = sub_root, k

    def __call__(self, ctx):
        return DiamDOMProgram(ctx, self.sub_root, self.k)


class _wave_factory:
    def __init__(self, cluster_dominators, k):
        self.cluster_dominators, self.k = frozenset(cluster_dominators), k

    def __call__(self, ctx):
        return NearestDominatorProgram(
            ctx, ctx.node in self.cluster_dominators, self.k
        )
