"""Algorithm ``DOM_Partition_2(k)`` (§3.2.2, Fig. 6).

Like ``DOM_Partition_1`` but clusters whose spanning tree reaches depth
``k + 1`` are erased from the working tree (splitting it into a forest)
and moved to the output, so cluster radii stay ``O(k)`` instead of
``O(k^2)``.  Lone clusters whose neighbours were all erased are parked
in a side set ``S`` and merged into neighbouring output clusters at the
very end (step 4) — at most one such "star merge", which keeps the
radius bound at ``5k + 2``.

Guarantees (Lemmas 3.5 / 3.6): the output is a partition; every cluster
has ``|C| >= k + 1`` and ``Rad(C) <= 5k + 2``.  Running time is
``O(k log k log* n)`` — each of the ``ceil(log2(k + 1))`` iterations
pays O(log* n) virtual rounds at O(k) physical rounds each.

Reproduction note (R2): Lemma 3.5 asserts the working forest is empty
after the last iteration, but removal is triggered by cluster *depth*
``>= k + 1`` while the doubling argument bounds cluster *size*; a
cluster of k+1 or more nodes with depth <= k survives the loop.  The
driver therefore flushes surviving clusters to the output after the
loop — they already satisfy both output properties (size >= k + 1 by
doubling, radius <= 3k + 1 by the Lemma 3.6 argument), so the paper's
guarantees are unaffected.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..graphs.distances import bfs_distances
from ..graphs.graph import Graph
from ..graphs.partition import Cluster, Partition
from ..sim.runner import StagedRun
from .partition_common import (
    cluster_depth,
    log2_phase_count,
    merge_by_center_map,
    run_balanced_dom_on_forest,
    singleton_clusters,
    tops_by_member,
)


def dom_partition_2(
    tree: Graph,
    root: Any,
    t_parent: Dict[Any, Optional[Any]],
    k: int,
) -> Tuple[Partition, StagedRun]:
    """Run ``DOM_Partition_2(k)`` on a rooted tree of size >= k + 1."""
    if tree.num_nodes < k + 1:
        raise ValueError(
            f"DOM_Partition_2 requires n >= k + 1 (n={tree.num_nodes}, k={k})"
        )
    t_depth = bfs_distances(tree, root)
    staged = StagedRun()
    live: Dict[Any, Set[Any]] = singleton_clusters(tree)
    out: Dict[Any, Set[Any]] = {}
    side: List[Set[Any]] = []  # the paper's set S

    for iteration in range(1, log2_phase_count(k) + 1):
        if not live:
            break
        # (3a) BalancedDOM on every tree of the forest, then contract.
        center_map, virtual = run_balanced_dom_on_forest(tree, live, t_parent)
        staged.add_rounds(f"iteration-{iteration}", virtual.physical_rounds)
        live = merge_by_center_map(live, center_map, t_depth)
        # (3b) Remove sufficiently deep clusters to the output.  The
        # distributed depth test costs O(k) once per removed cluster
        # (§3.2.3's implementation note); clusters test in parallel so
        # one O(k) charge per iteration with removals suffices.
        removed_any = False
        for top in sorted(live, key=str):
            if cluster_depth(tree, live[top], top) >= k + 1:
                out[top] = live.pop(top)
                removed_any = True
        if removed_any:
            staged.add_rounds(f"depth-test-{iteration}", 2 * (k + 1))
        # (3c) Remove lone clusters (single-node trees of the forest).
        for top in sorted(live, key=str):
            if not _has_live_neighbor(tree, live, top):
                side.append(live.pop(top))

    # Post-loop flush (reproduction note R2): surviving clusters meet the
    # output properties; move them to the output.
    for top in sorted(live, key=str):
        out[top] = live.pop(top)

    # (4) Dispose of the side set.
    _merge_side_set(tree, out, side, k)
    # Re-anchor each output cluster at its true top (step-4 merges may
    # have shifted it); the partition centre is the cluster's root.
    from .partition_common import recompute_top

    partition = Partition(
        Cluster(recompute_top(members, t_depth), set(members))
        for members in out.values()
    )
    return partition, staged


def _has_live_neighbor(
    tree: Graph, live: Dict[Any, Set[Any]], top: Any
) -> bool:
    owner = tops_by_member(live)
    for v in live[top]:
        for u in tree.neighbors(v):
            other = owner.get(u)
            if other is not None and other != top:
                return True
    return False


def _merge_side_set(
    tree: Graph,
    out: Dict[Any, Set[Any]],
    side: List[Set[Any]],
    k: int,
) -> None:
    """Step 4: large side clusters join the output as-is; small ones are
    merged into a neighbouring output cluster (Lemma 3.5 shows one
    exists)."""
    if not side:
        return
    for members in side:
        if len(members) > k:
            top = min(members, key=str)
            out[top] = set(members)
    owner = tops_by_member(out)
    for members in side:
        if len(members) > k:
            continue
        target: Optional[Any] = None
        for v in sorted(members, key=str):
            for u in sorted(tree.neighbors(v), key=str):
                if u in owner:
                    target = owner[u]
                    break
            if target is not None:
                break
        if target is None:
            raise RuntimeError(
                "side cluster has no neighbouring output cluster; "
                "Lemma 3.5's argument is violated"
            )
        out[target] |= members
        for v in members:
            owner[v] = target
