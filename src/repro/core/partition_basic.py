"""Algorithm ``DOM_Partition_1(k)`` (§3.2.1, Fig. 5).

The simplest tree-partitioning algorithm: ``ceil(log2(k + 1))``
rounds of (BalancedDOM → contract), so every cluster at least doubles
per iteration (property (c) of Definition 3.1) and the output is a
``(k + 1, O(k^2))`` spanning forest of the input tree:

Lemma 3.4: every output cluster C satisfies ``|C| >= k + 1`` and
``Rad(C) <= 4 k^2``, and the algorithm needs ``O(k^2 log* n)`` time —
each virtual round over the contracted tree costs time proportional to
the current maximum cluster diameter, which this driver charges through
:class:`~repro.sim.virtual.VirtualNetwork`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..graphs.distances import bfs_distances
from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..sim.runner import StagedRun
from .partition_common import (
    clusters_to_partition,
    log2_phase_count,
    merge_by_center_map,
    run_balanced_dom_on_forest,
    singleton_clusters,
)


def dom_partition_1(
    tree: Graph,
    root: Any,
    t_parent: Dict[Any, Optional[Any]],
    k: int,
) -> Tuple[Partition, StagedRun]:
    """Run ``DOM_Partition_1(k)`` on a rooted tree of size >= k + 1.

    Returns the output partition and per-iteration round accounting.
    """
    if tree.num_nodes < k + 1:
        raise ValueError(
            f"DOM_Partition_1 requires n >= k + 1 (n={tree.num_nodes}, k={k})"
        )
    t_depth = bfs_distances(tree, root)
    clusters = singleton_clusters(tree)
    staged = StagedRun()
    for iteration in range(1, log2_phase_count(k) + 1):
        if len(clusters) == 1:
            # Fully contracted: nothing left to merge.
            break
        center_map, virtual = run_balanced_dom_on_forest(
            tree, clusters, t_parent
        )
        staged.add_rounds(f"iteration-{iteration}", virtual.physical_rounds)
        clusters = merge_by_center_map(clusters, center_map, t_depth)
    return clusters_to_partition(tree, clusters), staged
