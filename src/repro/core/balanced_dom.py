"""Algorithm ``BalancedDOM`` (§3.1, Fig. 4) — balanced dominating sets.

Definition 3.1: a *balanced dominating set* of an n-node graph is a
dominating set ``D`` with an associated partition ``P`` such that
(a) ``|D| <= floor(n / 2)``, (b) ``D`` dominates, and (c) every cluster
of ``P`` has at least two nodes.

The paper builds it by running ``Small-Dom-Set`` and then repairing
singleton clusters (Fig. 4 steps 2–4).  Our ``Small-Dom-Set`` (see
:mod:`repro.core.small_dom_set`) never emits singletons on trees with
``n >= 2``, so the repair is a no-op on that path; we still implement
the repair verbatim in :func:`repair_singletons` so that any procedure
meeting only the Lemma 3.2 contract can be dropped in, and unit-test it
against hand-built singleton-bearing inputs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..sim.network import Network
from .small_dom_set import small_dom_set


def repair_singletons(
    graph: Graph,
    dominators: Set[Any],
    center_of: Dict[Any, Any],
) -> Tuple[Set[Any], Dict[Any, Any]]:
    """Fig. 4 steps 2–4, applied to any (D, P) meeting Lemma 3.2.

    ``center_of`` maps each node to its cluster centre (dominator).
    Returns the repaired (D, center_of).
    """
    dominators = set(dominators)
    center_of = dict(center_of)
    members: Dict[Any, Set[Any]] = {}
    for v, c in center_of.items():
        members.setdefault(c, set()).add(v)

    # Step 2: every singleton {v} quits D and picks a neighbour u not in
    # D as its dominator (one exists: Lemma 3.2's last property).
    moved: Dict[Any, Any] = {}
    original_members = {c: set(ms) for c, ms in members.items()}
    for center in sorted(members, key=str):
        if len(members[center]) == 1 and center in dominators:
            v = center
            if graph.degree(v) == 0:
                # Isolated node (forest input): must stay a singleton
                # self-dominating cluster; Definition 3.1 is only
                # claimed for connected trees with n >= 2.
                continue
            outside = sorted(
                (u for u in graph.neighbors(v) if u not in dominators), key=str
            )
            if not outside:
                raise ValueError(
                    f"dominator {v} has no neighbour outside D; input "
                    f"violates the Lemma 3.2 contract"
                )
            u = outside[0]
            dominators.discard(v)
            moved[v] = u

    # Step 3: each chosen u adds itself to D, quits its old cluster and
    # forms a new cluster of itself plus its choosers.
    for v, u in moved.items():
        dominators.add(u)
        members[center_of[u]].discard(u)
        center_of[u] = u
        members.setdefault(u, set()).add(u)
        members[center_of[v]].discard(v)
        center_of[v] = u
        members[u].add(v)

    # Step 4: a dominator whose (modified) cluster became a singleton
    # joins the cluster of a node that left it in step 3, and quits D.
    for center in sorted(list(members), key=str):
        if center in dominators and len(members.get(center, ())) == 1:
            leavers = sorted(
                (
                    u
                    for u in original_members.get(center, ())
                    if center_of.get(u) != center
                ),
                key=str,
            )
            if not leavers:
                continue
            u = leavers[0]
            dominators.discard(center)
            members[center].discard(center)
            center_of[center] = center_of[u]
            members[center_of[u]].add(center)

    center_of = {v: c for v, c in center_of.items() if members.get(c)}
    return dominators, center_of


def balanced_dom(
    graph: Graph,
    parent_of: Dict[Any, Optional[Any]],
    word_limit: int = 8,
) -> Tuple[Set[Any], Partition, "Network"]:
    """Run Algorithm ``BalancedDOM`` on a rooted tree/forest.

    Our ``Small-Dom-Set`` output is already balanced; the repair pass is
    applied anyway (as the paper specifies) and acts as an assertion.
    Returns (balanced dominating set, partition, network).
    """
    dominators, partition, network = small_dom_set(graph, parent_of, word_limit)
    repaired_d, repaired_centers = repair_singletons(
        graph, dominators, dict(partition.center_of)
    )
    return repaired_d, Partition.from_center_map(repaired_centers), network
