"""Algorithm ``DOM_Partition(k)`` (§3.2.3, Fig. 7) — the O(k log* n)
tree partitioning.

``DOM_Partition_2`` pays O(k) physical rounds per virtual round in
*every* iteration because some cluster may already have Θ(k) diameter.
The fast variant caps phase ``i`` at O(2^i) time by letting only
clusters of radius at most ``2 * 2^i`` participate; larger clusters wait
in a set ``W`` and are returned to the forest at the start of the next
phase (step 3-I).  A participating cluster whose tree became a
singleton (all neighbours waiting) merges *onto* a waiting neighbour at
a node ``w`` of depth at most ``k`` (step 3-IV), which bounds the depth
growth; clusters whose depth reaches ``k + 1`` are moved to the output
by the standing depth test.  Total time: ``sum_i O(2^i log* n)`` =
``O(k log* n)`` (Lemma 3.8).

Guarantees (Lemma 3.7): the output is a partition with
``|C| >= k + 1`` and ``Rad(C) <= 5k + 2`` for every cluster.

Reproduction notes:

* R2 (see :mod:`repro.core.partition_bounded`) applies here too: the
  post-loop flush moves surviving clusters (live and waiting) to the
  output / side set.
* R3: the paper's per-phase accounting is reproduced by charging each
  phase ``i``: the participation probe (O(2^i)), the 3-IV handshake
  (O(2^i)), and the BalancedDOM run at ``2 r + 1`` physical rounds per
  virtual round where ``r <= 2 * 2^i`` is the maximum *participating*
  radius — exactly the cap the paper engineers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..graphs.distances import bfs_distances
from ..graphs.graph import Graph
from ..graphs.partition import Cluster, Partition
from ..sim.runner import StagedRun
from ..sim.virtual import VirtualNetwork
from .partition_bounded import _merge_side_set
from .partition_common import (
    build_contracted_forest,
    cluster_depth,
    cluster_depths,
    contracted_parent_map,
    log2_phase_count,
    merge_by_center_map,
    recompute_top,
    singleton_clusters,
    tops_by_member,
)


def dom_partition(
    tree: Graph,
    root: Any,
    t_parent: Dict[Any, Optional[Any]],
    k: int,
) -> Tuple[Partition, StagedRun]:
    """Run the fast ``DOM_Partition(k)`` on a rooted tree, n >= k + 1."""
    if tree.num_nodes < k + 1:
        raise ValueError(
            f"DOM_Partition requires n >= k + 1 (n={tree.num_nodes}, k={k})"
        )
    t_depth = bfs_distances(tree, root)
    staged = StagedRun()
    live: Dict[Any, Set[Any]] = singleton_clusters(tree)
    waiting: Dict[Any, Set[Any]] = {}
    out: Dict[Any, Set[Any]] = {}
    side: List[Set[Any]] = []

    for phase in range(1, log2_phase_count(k) + 1):
        radius_cap = 2 * (1 << phase)
        # (3-I) Return the waiting clusters to the forest.
        live.update(waiting)
        waiting = {}
        if not live:
            break
        # Standing depth test (the §3.2.3 implementation note): clusters
        # whose depth counters exceeded k move to the output.
        _remove_deep_clusters(tree, live, out, k)
        # (3-II/3-III) Participation probe: clusters with radius above
        # 2 * 2^i wait this phase out.  Cost: a probe to depth 2 * 2^i
        # and back.
        staged.add_rounds(f"probe-{phase}", 2 * radius_cap + 1)
        for top in sorted(live, key=str):
            if cluster_depth(tree, live[top], top) > radius_cap:
                waiting[top] = live.pop(top)
        # (3-IV) Lone participating clusters merge onto an eligible
        # waiting neighbour, or retire to the side set.
        _absorb_lone_clusters(tree, live, waiting, side, k, staged, phase)
        if not live:
            continue
        # (3a) BalancedDOM on the participating forest, then contract.
        center_map, virtual = _run_balanced_on_participants(
            tree, live, t_parent
        )
        cost = virtual.virtual_rounds * (2 * min(virtual.round_cost // 2, radius_cap) + 1)
        staged.add_rounds(f"balanced-{phase}", cost)
        live = merge_by_center_map(live, center_map, t_depth)
        # (3b) Deep merged clusters move to the output.
        _remove_deep_clusters(tree, live, out, k)

    # Post-loop flush (R2): everything left joins the output if large
    # enough, else the side set.
    for pool in (live, waiting):
        for top in sorted(pool, key=str):
            members = pool[top]
            if len(members) >= k + 1:
                out[top] = members
            else:
                side.append(members)
    # (4) Dispose of the side set as in DOM_Partition_2.
    _merge_side_set(tree, out, side, k)
    partition = Partition(
        Cluster(recompute_top(members, t_depth), set(members))
        for members in out.values()
    )
    return partition, staged


def _remove_deep_clusters(
    tree: Graph,
    live: Dict[Any, Set[Any]],
    out: Dict[Any, Set[Any]],
    k: int,
) -> bool:
    removed = False
    for top in sorted(live, key=str):
        if cluster_depth(tree, live[top], top) >= k + 1:
            out[top] = live.pop(top)
            removed = True
    return removed


def _run_balanced_on_participants(
    tree: Graph,
    live: Dict[Any, Set[Any]],
    t_parent: Dict[Any, Optional[Any]],
):
    from .small_dom_set import SmallDomSetProgram

    contracted = build_contracted_forest(tree, live)
    contracted_parents = contracted_parent_map(t_parent, live)
    virtual = VirtualNetwork(contracted)
    id_bound = max(
        tree.num_nodes, max((v + 1 for v in tree.nodes), default=1)
    )
    virtual.run(
        lambda ctx: SmallDomSetProgram(ctx, contracted_parents, id_bound=id_bound)
    )
    return virtual.output_field("dominator"), virtual


def _absorb_lone_clusters(
    tree: Graph,
    live: Dict[Any, Set[Any]],
    waiting: Dict[Any, Set[Any]],
    side: List[Set[Any]],
    k: int,
    staged: StagedRun,
    phase: int,
) -> None:
    """Step 3-IV: a participating cluster with no participating
    neighbour merges onto a waiting neighbour at a node ``w`` with
    ``Depth(w) <= k``; with no eligible host it moves to the side set.
    """
    live_owner = tops_by_member(live)
    lone_tops = [
        top for top in sorted(live, key=str)
        if not _touches(tree, live[top], live_owner, top)
    ]
    if not lone_tops:
        return
    staged.add_rounds(f"absorb-{phase}", 2 * (1 << phase) + 2)
    waiting_owner = tops_by_member(waiting)
    waiting_depths: Dict[Any, Dict[Any, int]] = {}
    for top in lone_tops:
        members = live.pop(top)
        host_top: Optional[Any] = None
        for v in sorted(members, key=str):
            for w in sorted(tree.neighbors(v), key=str):
                candidate = waiting_owner.get(w)
                if candidate is None:
                    continue
                if candidate not in waiting_depths:
                    waiting_depths[candidate] = cluster_depths(
                        tree, waiting[candidate], candidate
                    )
                if waiting_depths[candidate][w] <= k:
                    host_top = candidate
                    break
            if host_top is not None:
                break
        if host_top is None:
            side.append(members)
        else:
            waiting[host_top] |= members
            for v in members:
                waiting_owner[v] = host_top
            # Step 3-IV(iii): depth values inside the host are refreshed;
            # our bookkeeping recomputes them on demand.
            waiting_depths.pop(host_top, None)


def _touches(
    tree: Graph,
    members: Set[Any],
    owner: Dict[Any, Any],
    top: Any,
) -> bool:
    for v in members:
        for u in tree.neighbors(v):
            other = owner.get(u)
            if other is not None and other != top:
                return True
    return False
