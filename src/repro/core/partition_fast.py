"""Algorithm ``DOM_Partition(k)`` (§3.2.3, Fig. 7) — the O(k log* n)
tree partitioning.

``DOM_Partition_2`` pays O(k) physical rounds per virtual round in
*every* iteration because some cluster may already have Θ(k) diameter.
The fast variant caps phase ``i`` at O(2^i) time by letting only
clusters of radius at most ``2 * 2^i`` participate; larger clusters wait
in a set ``W`` and are returned to the forest at the start of the next
phase (step 3-I).  A participating cluster whose tree became a
singleton (all neighbours waiting) merges *onto* a waiting neighbour at
a node ``w`` of depth at most ``k`` (step 3-IV), which bounds the depth
growth; clusters whose depth reaches ``k + 1`` are moved to the output
by the standing depth test.  Total time: ``sum_i O(2^i log* n)`` =
``O(k log* n)`` (Lemma 3.8).

Guarantees (Lemma 3.7): the output is a partition with
``|C| >= k + 1`` and ``Rad(C) <= 5k + 2`` for every cluster.

Reproduction notes:

* R2 (see :mod:`repro.core.partition_bounded`) applies here too: the
  post-loop flush moves surviving clusters (live and waiting) to the
  output / side set.
* R3: the paper's per-phase accounting is reproduced by charging each
  phase ``i``: the participation probe (O(2^i)), the 3-IV handshake
  (O(2^i)), and the BalancedDOM run at ``2 r + 1`` physical rounds per
  virtual round where ``r <= 2 * 2^i`` is the maximum *participating*
  radius — exactly the cap the paper engineers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..graphs.distances import bfs_distances
from ..graphs.graph import Graph
from ..graphs.partition import Cluster, Partition
from ..sim.runner import StagedRun
from ..sim.virtual import VirtualNetwork
from .partition_bounded import _merge_side_set
from .partition_common import (
    build_contracted_forest,
    cluster_depth,
    cluster_depths,
    contracted_parent_map,
    log2_phase_count,
    merge_by_center_map,
    recompute_top,
    singleton_clusters,
    tops_by_member,
)


def dom_partition(
    tree: Graph,
    root: Any,
    t_parent: Dict[Any, Optional[Any]],
    k: int,
    backend: str = "reference",
) -> Tuple[Partition, StagedRun]:
    """Run the fast ``DOM_Partition(k)`` on a rooted tree, n >= k + 1.

    ``backend="dense"`` runs :func:`_dom_partition_dense`, an
    array-primary port of this loop whose cluster state lives in numpy
    owner/status arrays (see its docstring).  It produces the identical
    partition and the identical stage accounting: the BalancedDOM stage
    reports the same virtual round count, and the physical-round charge
    reuses the participation probe's depth measurements (the contracted
    forest's max radius is the max participating cluster depth).  Under
    an active observation the reference loop runs instead — the virtual
    network's event stream has no dense replay.
    """
    if backend not in ("reference", "dense"):
        raise ValueError(f"unknown backend {backend!r}")
    if tree.num_nodes < k + 1:
        raise ValueError(
            f"DOM_Partition requires n >= k + 1 (n={tree.num_nodes}, k={k})"
        )
    if backend == "dense":
        from ..obs.session import current_observation
        from ..sim.dense import require_numpy

        require_numpy()
        if current_observation() is None:
            return _dom_partition_dense(tree, root, t_parent, k)

    t_depth = bfs_distances(tree, root)
    staged = StagedRun()
    live: Dict[Any, Set[Any]] = singleton_clusters(tree)
    waiting: Dict[Any, Set[Any]] = {}
    out: Dict[Any, Set[Any]] = {}
    side: List[Set[Any]] = []

    for phase in range(1, log2_phase_count(k) + 1):
        radius_cap = 2 * (1 << phase)
        # (3-I) Return the waiting clusters to the forest.
        live.update(waiting)
        waiting = {}
        if not live:
            break
        # Standing depth test (the §3.2.3 implementation note): clusters
        # whose depth counters exceeded k move to the output.
        _remove_deep_clusters(tree, live, out, k)
        # (3-II/3-III) Participation probe: clusters with radius above
        # 2 * 2^i wait this phase out.  Cost: a probe to depth 2 * 2^i
        # and back.
        staged.add_rounds(f"probe-{phase}", 2 * radius_cap + 1)
        for top in sorted(live, key=str):
            if cluster_depth(tree, live[top], top) > radius_cap:
                waiting[top] = live.pop(top)
        # (3-IV) Lone participating clusters merge onto an eligible
        # waiting neighbour, or retire to the side set.
        _absorb_lone_clusters(tree, live, waiting, side, k, staged, phase)
        if not live:
            continue
        # (3a) BalancedDOM on the participating forest, then contract.
        center_map, virtual = _run_balanced_on_participants(
            tree, live, t_parent
        )
        cost = virtual.virtual_rounds * (2 * min(virtual.round_cost // 2, radius_cap) + 1)
        staged.add_rounds(f"balanced-{phase}", cost)
        live = merge_by_center_map(live, center_map, t_depth)
        # (3b) Deep merged clusters move to the output.
        _remove_deep_clusters(tree, live, out, k)

    # Post-loop flush (R2): everything left joins the output if large
    # enough, else the side set.
    for pool in (live, waiting):
        for top in sorted(pool, key=str):
            members = pool[top]
            if len(members) >= k + 1:
                out[top] = members
            else:
                side.append(members)
    # (4) Dispose of the side set as in DOM_Partition_2.
    _merge_side_set(tree, out, side, k)
    partition = Partition(
        Cluster(recompute_top(members, t_depth), set(members))
        for members in out.values()
    )
    return partition, staged


def _remove_deep_clusters(
    tree: Graph,
    live: Dict[Any, Set[Any]],
    out: Dict[Any, Set[Any]],
    k: int,
) -> bool:
    removed = False
    for top in sorted(live, key=str):
        if cluster_depth(tree, live[top], top) >= k + 1:
            out[top] = live.pop(top)
            removed = True
    return removed


def _run_balanced_on_participants(
    tree: Graph,
    live: Dict[Any, Set[Any]],
    t_parent: Dict[Any, Optional[Any]],
):
    from .small_dom_set import SmallDomSetProgram

    contracted = build_contracted_forest(tree, live)
    contracted_parents = contracted_parent_map(t_parent, live)
    virtual = VirtualNetwork(contracted)
    id_bound = max(
        tree.num_nodes, max((v + 1 for v in tree.nodes), default=1)
    )
    virtual.run(
        lambda ctx: SmallDomSetProgram(ctx, contracted_parents, id_bound=id_bound)
    )
    return virtual.output_field("dominator"), virtual


# Cluster status codes for the dense driver (meaningful at top rows).
_LIVE, _WAITING, _OUT = 0, 1, 2


def _dom_partition_dense(
    tree: Graph,
    root: Any,
    t_parent: Dict[Any, Optional[Any]],
    k: int,
) -> Tuple[Partition, StagedRun]:
    """Array-primary ``DOM_Partition(k)``.

    The reference loop keeps cluster state as dicts of member sets and
    interrogates them one cluster at a time (a python BFS per cluster
    per phase); million-node runs drown in those calls.  Here the
    authoritative state is two arrays over the CSR rows:

    * ``owner[r]`` — the row of the cluster top owning node ``r``
      (−1 while a node sits in the side set);
    * ``status[owner[r]]`` — the owning cluster's pool (live, waiting,
      or output).  Status cells are meaningful only at current top
      rows; stale values at other rows are never consulted because
      every query goes through ``owner``.

    Each phase then costs a handful of whole-forest passes: one
    ``forest_heights`` sweep serves both the standing depth test and
    the participation probe (removing a cluster does not change any
    other cluster's depth), lone-cluster detection is a single edge
    scan, the BalancedDOM stage runs on the top rows directly
    (:func:`repro.sim.dense.forest.balanced_rows`), and contraction is
    a segmented argmin over ``(T-depth, str)`` keys.  Dict-of-sets
    views are materialized only at the two reference-semantics
    boundaries — step 3-IV absorption (rare, and the sets involved are
    small) and the final side-set disposal — so the python cost scales
    with the clusters touched, not with n.  Output and stage accounting
    are identical to the reference loop, element for element.
    """
    from ..sim.dense.core import np
    from ..sim.dense.csr import csr_adjacency
    from ..sim.dense.forest import balanced_rows
    from ..sim.dense.kernels import _edge_endpoints, forest_heights

    csr = csr_adjacency(tree)
    n = csr.n
    nodes = csr.nodes
    index = csr.index
    parent_row = np.full(n, -1, dtype=np.int64)
    for v, p in t_parent.items():
        if p is not None and v in index:
            parent_row[index[v]] = index[p]
    grown = forest_heights(parent_row, n)
    if grown is None:
        raise ValueError("t_parent contains a cycle")
    _heights, t_depth = grown
    # recompute_top minimises (T-depth, str(id)); both components are
    # < n, so one int64 key linearises the pair, and str_rank's
    # uniqueness makes the key invertible through rank_to_row.
    top_key = t_depth * n + csr.str_rank
    id_bound = max(
        tree.num_nodes, max((v + 1 for v in tree.nodes), default=1)
    )
    edges_s, edges_t = _edge_endpoints(csr)
    sentinel = np.iinfo(np.int64).max

    staged = StagedRun()
    owner = np.arange(n, dtype=np.int64)
    status = np.full(n, _LIVE, dtype=np.int8)
    side: List[Set[Any]] = []

    def pool_rows(flag: int) -> Any:
        safe = np.maximum(owner, 0)
        return np.flatnonzero((owner >= 0) & (status[safe] == flag))

    def top_depths(rows: Any) -> Any:
        """Depth of every cluster over ``rows``, indexed by top row.

        Each cluster is a parent-connected subtree of ``T`` whose
        shallowest member is its top, so the cluster-restricted parent
        forest's depth equals the reference's per-cluster BFS depth.
        """
        cp = np.full(n, -1, dtype=np.int64)
        pr = parent_row[rows]
        keep = np.zeros(rows.shape[0], dtype=bool)
        has_parent = pr >= 0
        keep[has_parent] = (
            owner[pr[has_parent]] == owner[rows[has_parent]]
        )
        cp[rows[keep]] = pr[keep]
        sub = forest_heights(cp, n)
        assert sub is not None  # subforests of a tree are acyclic
        depth = sub[1]
        acc = np.zeros(n, dtype=np.int64)
        np.maximum.at(acc, owner[rows], depth[rows])
        return acc

    for phase in range(1, log2_phase_count(k) + 1):
        radius_cap = 2 * (1 << phase)
        # (3-I) Return the waiting clusters to the forest.
        status[status == _WAITING] = _LIVE
        rows = pool_rows(_LIVE)
        if rows.size == 0:
            break
        # Standing depth test + participation probe: one depth pass
        # serves both, since removal leaves other depths alone.
        depth_by_top = top_depths(rows)
        tops = np.unique(owner[rows])
        status[tops[depth_by_top[tops] >= k + 1]] = _OUT
        staged.add_rounds(f"probe-{phase}", 2 * radius_cap + 1)
        shallow = tops[depth_by_top[tops] < k + 1]
        status[shallow[depth_by_top[shallow] > radius_cap]] = _WAITING
        parts = shallow[depth_by_top[shallow] <= radius_cap]
        # (3-IV) Lone participating clusters: one scan over the edge
        # list finds every cluster with no live neighbour.
        if parts.size:
            so, to = owner[edges_s], owner[edges_t]
            live_edge = (
                (so >= 0)
                & (to >= 0)
                & (so != to)
                & (status[np.maximum(so, 0)] == _LIVE)
                & (status[np.maximum(to, 0)] == _LIVE)
            )
            touching = np.zeros(n, dtype=bool)
            touching[so[live_edge]] = True
            lone_rows = parts[~touching[parts]]
            if lone_rows.size:
                # Absorption semantics stay with the reference helper,
                # which only ever touches the lone clusters themselves
                # and the waiting clusters adjacent to them — so only
                # those few (small) clusters are materialized, and only
                # their rows written back.
                lone_mask = np.zeros(n, dtype=bool)
                lone_mask[lone_rows] = True
                live_rows = pool_rows(_LIVE)
                lone_members = live_rows[lone_mask[owner[live_rows]]]
                _s2, t2 = csr.gather_edges(lone_members)
                near = owner[t2]
                near_waiting = (near >= 0) & (
                    status[np.maximum(near, 0)] == _WAITING
                )
                host_tops = np.unique(near[near_waiting])
                host_mask = np.zeros(n, dtype=bool)
                host_mask[host_tops] = True
                waiting_rows = pool_rows(_WAITING)
                host_members = waiting_rows[host_mask[owner[waiting_rows]]]
                live_d = _group_rows(np, csr, owner, lone_members)
                waiting_d = _group_rows(np, csr, owner, host_members)
                lone_rows = lone_rows[np.argsort(csr.str_rank[lone_rows])]
                lone = [nodes[r] for r in lone_rows.tolist()]
                side_before = len(side)
                _absorb_lone_clusters(
                    tree, live_d, waiting_d, side, k, staged, phase, lone
                )
                for top, members in waiting_d.items():
                    top_row = index[top]
                    member_rows = np.fromiter(
                        (index[v] for v in members),
                        dtype=np.int64,
                        count=len(members),
                    )
                    owner[member_rows] = top_row
                for members in side[side_before:]:
                    for v in members:
                        owner[index[v]] = -1
                parts = np.setdiff1d(parts, lone_rows, assume_unique=True)
        if parts.size == 0:
            continue
        # (3a) BalancedDOM on the contracted participating forest.
        # ``parts`` is ascending, and CSR rows are in ascending id
        # order, so ids[parts] is exactly the contracted node order the
        # virtual network would use.
        bids = csr.ids[parts]
        pr = parent_row[parts]
        host = np.full(parts.shape[0], -1, dtype=np.int64)
        has_parent = pr >= 0
        host[has_parent] = owner[pr[has_parent]]
        host_live = (host >= 0) & (
            status[np.maximum(host, 0)] == _LIVE
        )
        bparent = np.full(parts.shape[0], -1, dtype=np.int64)
        hosted = np.flatnonzero(host_live)
        bparent[hosted] = np.searchsorted(parts, host[hosted])
        dominator_ids, virtual_rounds = balanced_rows(bids, bparent, id_bound)
        # Absorption only removed clusters, so the probe depths of the
        # surviving participants are exactly the contracted forest's
        # cluster radii.
        max_radius = int(depth_by_top[parts].max())
        cost = virtual_rounds * (2 * min(max_radius, radius_cap) + 1)
        staged.add_rounds(f"balanced-{phase}", cost)
        # Contract: regroup members under the dominator's cluster, then
        # re-anchor each merged cluster at its (T-depth, str)-minimum
        # member — a segmented argmin replacing merge_by_center_map.
        dom_rows = parts[np.searchsorted(bids, dominator_ids)]
        dom_of = np.empty(n, dtype=np.int64)
        dom_of[parts] = dom_rows
        rows = pool_rows(_LIVE)
        node_dom = dom_of[owner[rows]]
        best = np.full(n, sentinel, dtype=np.int64)
        np.minimum.at(best, node_dom, top_key[rows])
        groups = np.flatnonzero(best < sentinel)
        new_tops = csr.rank_to_row[best[groups] % n]
        remap = np.empty(n, dtype=np.int64)
        remap[groups] = new_tops
        owner[rows] = remap[node_dom]
        status[new_tops] = _LIVE
        # (3b) Deep merged clusters move to the output.
        rows = pool_rows(_LIVE)
        if rows.size:
            depth_by_top = top_depths(rows)
            tops = np.unique(owner[rows])
            status[tops[depth_by_top[tops] >= k + 1]] = _OUT

    # Post-loop flush (R2): everything left joins the output if large
    # enough, else the side set — live pool first, tops in str order,
    # matching the reference's side-list ordering.
    for flag in (_LIVE, _WAITING):
        rows = pool_rows(flag)
        if rows.size == 0:
            continue
        sizes = np.zeros(n, dtype=np.int64)
        np.add.at(sizes, owner[rows], 1)
        tops = np.unique(owner[rows])
        status[tops[sizes[tops] >= k + 1]] = _OUT
        small = tops[sizes[tops] < k + 1]
        if small.size:
            small = small[np.argsort(csr.str_rank[small])]
            small_mask = np.zeros(n, dtype=bool)
            small_mask[small] = True
            small_rows = rows[small_mask[owner[rows]]]
            members_of: Dict[int, Set[Any]] = {
                int(t): set() for t in small.tolist()
            }
            for r in small_rows.tolist():
                members_of[int(owner[r])].add(nodes[r])
            for t in small.tolist():
                side.append(members_of[int(t)])
            owner[small_rows] = -1

    out = _pool_dict(np, csr, owner, status, _OUT)
    _dispose_side_dense(tree, csr, owner, out, side, k)
    # Re-anchor every output cluster at once: a segmented argmin over
    # the same (T-depth, str) key recompute_top minimises.
    rows = np.flatnonzero(owner >= 0)
    best = np.full(n, sentinel, dtype=np.int64)
    np.minimum.at(best, owner[rows], top_key[rows])
    present = np.flatnonzero(best < sentinel)
    winner_rows = csr.rank_to_row[best[present] % n]
    final_top = {
        nodes[int(g)]: nodes[int(w)]
        for g, w in zip(present.tolist(), winner_rows.tolist())
    }
    partition = Partition(
        Cluster._owning(final_top[top], members)
        for top, members in out.items()
    )
    return partition, staged


def _pool_dict(
    np: Any, csr: Any, owner: Any, status: Any, flag: int
) -> Dict[Any, Set[Any]]:
    """Materialize one pool of the dense driver as top -> member set."""
    safe = np.maximum(owner, 0)
    rows = np.flatnonzero((owner >= 0) & (status[safe] == flag))
    return _group_rows(np, csr, owner, rows)


def _group_rows(
    np: Any, csr: Any, owner: Any, rows: Any
) -> Dict[Any, Set[Any]]:
    """Group ``rows`` by their owning top: top node -> member set."""
    result: Dict[Any, Set[Any]] = {}
    if rows.size == 0:
        return result
    order = np.argsort(owner[rows], kind="stable")
    rows = rows[order]
    owners = owner[rows]
    cuts = np.flatnonzero(np.diff(owners)) + 1
    starts = np.concatenate(([0], cuts)).tolist()
    ends = np.concatenate((cuts, [rows.size])).tolist()
    row_list = rows.tolist()
    owner_list = owners.tolist()
    nodes = csr.nodes
    for a, b in zip(starts, ends):
        result[nodes[owner_list[a]]] = {nodes[r] for r in row_list[a:b]}
    return result


def _dispose_side_dense(
    tree: Graph,
    csr: Any,
    owner: Any,
    out: Dict[Any, Set[Any]],
    side: List[Set[Any]],
    k: int,
) -> None:
    """Step 4 for the dense driver: :func:`_merge_side_set` semantics,
    but membership lookups go through the ``owner`` array (which is
    kept current) instead of rebuilding a python member -> top map over
    all n nodes."""
    if not side:
        return
    index = csr.index
    nodes = csr.nodes
    for members in side:
        if len(members) > k:
            top = min(members, key=str)
            out[top] = set(members)
            top_row = index[top]
            for v in members:
                owner[index[v]] = top_row
    for members in side:
        if len(members) > k:
            continue
        target: Optional[Any] = None
        for v in sorted(members, key=str):
            for u in sorted(tree.neighbors(v), key=str):
                row = int(owner[index[u]])
                if row >= 0:
                    target = nodes[row]
                    break
            if target is not None:
                break
        if target is None:
            raise RuntimeError(
                "side cluster has no neighbouring output cluster; "
                "Lemma 3.5's argument is violated"
            )
        out[target] |= members
        top_row = index[target]
        for v in members:
            owner[index[v]] = top_row


def _absorb_lone_clusters(
    tree: Graph,
    live: Dict[Any, Set[Any]],
    waiting: Dict[Any, Set[Any]],
    side: List[Set[Any]],
    k: int,
    staged: StagedRun,
    phase: int,
    lone_tops: Optional[List[Any]] = None,
) -> bool:
    """Step 3-IV: a participating cluster with no participating
    neighbour merges onto a waiting neighbour at a node ``w`` with
    ``Depth(w) <= k``; with no eligible host it moves to the side set.
    ``lone_tops`` lets the dense path supply the candidate list from
    its edge scan; returns whether ``live`` was mutated.
    """
    if lone_tops is None:
        live_owner = tops_by_member(live)
        lone_tops = [
            top for top in sorted(live, key=str)
            if not _touches(tree, live[top], live_owner, top)
        ]
    if not lone_tops:
        return False
    staged.add_rounds(f"absorb-{phase}", 2 * (1 << phase) + 2)
    waiting_owner = tops_by_member(waiting)
    waiting_depths: Dict[Any, Dict[Any, int]] = {}
    for top in lone_tops:
        members = live.pop(top)
        host_top: Optional[Any] = None
        for v in sorted(members, key=str):
            for w in sorted(tree.neighbors(v), key=str):
                candidate = waiting_owner.get(w)
                if candidate is None:
                    continue
                if candidate not in waiting_depths:
                    waiting_depths[candidate] = cluster_depths(
                        tree, waiting[candidate], candidate
                    )
                if waiting_depths[candidate][w] <= k:
                    host_top = candidate
                    break
            if host_top is not None:
                break
        if host_top is None:
            side.append(members)
        else:
            waiting[host_top] |= members
            for v in members:
                waiting_owner[v] = host_top
            # Step 3-IV(iii): depth values inside the host are refreshed;
            # our bookkeeping recomputes them on demand.
            waiting_depths.pop(host_top, None)
    return True


def _touches(
    tree: Graph,
    members: Set[Any],
    owner: Dict[Any, Any],
    top: Any,
) -> bool:
    for v in members:
        for u in tree.neighbors(v):
            other = owner.get(u)
            if other is not None and other != top:
                return True
    return False
