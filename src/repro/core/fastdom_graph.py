"""Algorithm ``FastDOM_G`` (§4.5, Theorem 4.4): small k-dominating sets
on general graphs in ``O(k log* n)`` rounds.

Composition, exactly as the paper:

1. ``SimpleMST`` builds a ``(k + 1, n)`` spanning forest — each tree a
   fragment of the MST with at least ``k + 1`` nodes — in O(k) rounds,
   sidestepping the Ω(Diam) cost of building one global BFS tree;
2. ``FastDOM_T`` runs on every fragment tree in parallel
   (O(k log* n) rounds);
3. the union of the per-fragment dominating sets has size at most
   ``sum_i |T_i| / (k + 1) = n / (k + 1)``.

If the whole graph has fewer than ``k + 1`` nodes, any single node
k-dominates it (diameter <= n - 1 <= k - 1) and the paper's bound
``max(1, floor(n / (k + 1)))`` is met by a singleton.
"""

from __future__ import annotations

from typing import Any, Dict, Set, Tuple

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..sim.runner import StagedRun
from .fastdom_tree import fastdom_tree
from .spanning_forest import simple_mst_forest


def fastdom_graph(
    graph: Graph,
    k: int,
    method: str = "kdom-dp",
    backend: str = "inline",
) -> Tuple[Set[Any], Partition, StagedRun]:
    """Run ``FastDOM_G`` on a connected weighted graph.

    Edge weights must be distinct (the model assumption; use
    :func:`repro.graphs.assign_unique_weights`).  Returns
    (k-dominating set, radius-<=k partition, per-stage rounds).
    ``backend`` is forwarded to the per-fragment :func:`fastdom_tree`
    runs (``"dense"`` vectorizes them; see that driver's fallback
    rules) — the SimpleMST stage always runs on the event engine.
    """
    from ..graphs.validation import is_connected

    staged = StagedRun()
    n = graph.num_nodes
    if n == 0:
        return set(), Partition([]), staged
    if not is_connected(graph):
        raise ValueError(
            "FastDOM_G requires a connected graph (the size bound "
            "n/(k+1) is per connected network)"
        )
    if n <= k:
        # Degenerate small graph: one dominator suffices.
        center = min(graph.nodes, key=str)
        partition = Partition.from_center_map({v: center for v in graph.nodes})
        return {center}, partition, staged

    parents, fragments, network = simple_mst_forest(graph, k)
    staged.record("simple-mst", network.metrics)

    dominators: Set[Any] = set()
    center_map: Dict[Any, Any] = {}
    max_fragment_rounds = 0
    fragment_messages = 0
    for fragment in fragments:
        fragment_parent = {
            v: (parents[v] if parents[v] in fragment else None)
            for v in fragment
        }
        fragment_root = next(
            v for v in sorted(fragment, key=str) if fragment_parent[v] is None
        )
        tree_edges = [
            (v, p) for v, p in fragment_parent.items() if p is not None
        ]
        fragment_tree = graph.subgraph(fragment).edge_subgraph(tree_edges)
        frag_d, frag_p, frag_staged = fastdom_tree(
            fragment_tree, fragment_root, fragment_parent, k,
            method=method, backend=backend,
        )
        dominators |= frag_d
        center_map.update(frag_p.center_of)
        max_fragment_rounds = max(max_fragment_rounds, frag_staged.total_rounds)
        fragment_messages += frag_staged.total_messages
    # Fragments are vertex-disjoint: their FastDOM_T runs execute in
    # parallel, so the stage costs the slowest fragment (messages sum).
    staged.add_rounds("fastdom-per-fragment", max_fragment_rounds)
    staged.total_messages += fragment_messages
    return dominators, Partition.from_center_map(center_map), staged
