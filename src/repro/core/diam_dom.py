"""Algorithm ``DiamDOM`` (§2.2, Figs. 1–3): the diameter-time
k-dominating set computation, with the paper's pipelined censuses.

Faithful to the paper:

* Procedure ``Initialize`` is the BFS + depth labels + tree-depth
  broadcast of Fig. 1 (:class:`repro.primitives.bfs.BFSTreeProgram`),
  after which every node knows ``Depth(v)``, ``M`` and the common time
  ``t1``.
* Procedure ``Census(l)`` (Fig. 2) is a convergecast in which a node of
  depth ``i`` emits its subtree's ``D_l`` count at round
  ``t1 + l + (M - i)``.
* The k + 1 censuses are staggered one round apart (Fig. 3) and —
  Lemma 2.3's "crucial observation" — never collide: on any edge, the
  census-``l`` message occupies round ``t1 + l + M - i``, distinct per
  ``l``.  The simulator enforces this (a collision would raise
  :class:`~repro.sim.errors.CongestionViolation`).
* The root picks the level class of minimum count; we additionally
  broadcast the chosen level so every node learns its membership.

Reproduction note (R1, see :mod:`repro.core.existence`): the chosen
class always meets the size bound but is *not* guaranteed to be
k-dominating when the BFS tree has leaves shallower than the chosen
level.  ``diam_dom`` reports the chosen set faithfully;
:func:`repro.core.kdom_tree.tree_kdominating_set` is the repaired
subroutine used inside ``FastDOM``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..graphs.graph import Graph
from ..primitives.bfs import BFSTreeProgram
from ..sim.model import Envelope
from ..sim.network import Network
from ..sim.program import Context
from .existence import _require_k


class DiamDOMProgram(BFSTreeProgram):
    """One node of Algorithm ``DiamDOM`` (Fig. 3).

    Outputs (everywhere): ``depth``, ``in_dominating_set``,
    ``chosen_level``; at the root additionally ``level_counts`` and
    ``decision_round`` (the round at which the root knows the answer —
    the quantity Lemma 2.3 bounds by ``5 * Diam + k``).
    """

    # Opt out of event-driven scheduling (the documented escape hatch,
    # see docs/performance.md): census emissions are keyed to absolute
    # round numbers (``t1 + l + (M - i)``), so a node must observe every
    # round even when its inbox is empty.
    TICK_EVERY_ROUND = True

    def __init__(
        self,
        ctx: Context,
        root: Any,
        k: int,
        staggered_by_level: bool = False,
    ):
        """``staggered_by_level`` enables the improvement sketched in
        the remark after Lemma 2.3: census ``l`` starts from its own
        deepest level ``M_l`` (the largest depth ≡ l mod k+1) rather
        than from depth ``M``, so all censuses complete by ``t1 + M``
        and the total drops to ``5·Diam`` flat (subtrees strictly below
        ``M_l`` provably contribute zero to census ``l`` and stay
        silent)."""
        super().__init__(ctx, root)
        _require_k(k)
        self.k = k
        self.staggered_by_level = staggered_by_level
        self._census_mode = False
        self._level_counts: Dict[int, int] = {}
        self._decided = False

    # -- Initialize → census transition ---------------------------------
    def on_initialized(self) -> None:
        # Unlike the standalone BFS program we keep running: censuses
        # start at t1 (known locally, identical at every node).
        self._census_mode = True

    def on_round(self, inbox: List[Envelope]) -> None:
        if not self._census_mode:
            super().on_round(inbox)
            return
        level = self._census_level_for_round(self.round)
        if level is not None:
            below = sum(
                envelope.payload[2]
                for envelope in inbox
                if envelope.tag() == "CEN"
            )
            own = 1 if self.depth % (self.k + 1) == level else 0
            counter = below + own
            if self.is_root:
                self._level_counts[level] = counter
                if len(self._level_counts) == self._expected_censuses():
                    self._decide()
                    return
            else:
                self.send(self.parent, "CEN", level, counter)
        for envelope in inbox:
            if envelope.tag() == "SEL":
                self._adopt_selection(envelope.payload[1])
                return

    # -- census schedules ---------------------------------------------------
    def _census_level_for_round(self, current: int) -> Optional[int]:
        """Which census (if any) this node emits in ``current``.

        Fig. 2/3 schedule: census ``l`` from a depth-``i`` node at round
        ``t1 + l + (M - i)`` — one census per round, staggered by start
        *time*.  Remark schedule: census ``l`` at round
        ``t1 + (M_l - i)`` where ``M_l`` is census l's deepest level —
        staggered by start *level*, all done by ``t1 + M``.  Both are
        collision-free on every edge (per-``l`` delivery rounds are
        distinct); the simulator enforces this.
        """
        offset = current - self.t1
        if offset < 0:
            return None
        if not self.staggered_by_level:
            level = offset - (self.tree_depth - self.depth)
            return level if 0 <= level <= self.k else None
        horizon = self.depth + offset  # candidate M_l
        if horizon > self.tree_depth:
            return None
        level = horizon % (self.k + 1)
        if level > self.k:
            return None
        return level if horizon == self._deepest_level(level) else None

    def _deepest_level(self, level: int) -> int:
        """``M_l``: the largest depth ≤ M congruent to ``level``."""
        return self.tree_depth - (
            (self.tree_depth - level) % (self.k + 1)
        )

    def _expected_censuses(self) -> int:
        """Censuses that physically run: classes beyond the tree depth
        are empty and emit nothing (their count is implicitly zero)."""
        return min(self.k, self.tree_depth) + 1

    # -- selection ---------------------------------------------------------
    def _decide(self) -> None:
        # Classes beyond the tree depth are empty (the k >= h case of
        # Lemma 2.1, where the root alone suffices): restrict the choice
        # to the nonempty classes l <= min(k, M).
        eligible = range(min(self.k, self.tree_depth) + 1)
        best = min(eligible, key=lambda lvl: (self._level_counts[lvl], lvl))
        self.output["level_counts"] = dict(self._level_counts)
        self.output["decision_round"] = self.round
        self._announce(best)

    def _adopt_selection(self, level: int) -> None:
        self._announce(level)

    def _announce(self, level: int) -> None:
        self.output["chosen_level"] = level
        self.output["in_dominating_set"] = (
            self.depth % (self.k + 1) == level
        )
        for child in sorted(self.children, key=str):
            self.send(child, "SEL", level)
        self.halt()


def diam_dom(
    graph: Graph,
    root: Any,
    k: int,
    word_limit: int = 8,
    staggered_by_level: bool = False,
) -> Tuple[Set[Any], int, Dict[int, int], "Network"]:
    """Run Algorithm ``DiamDOM`` on (typically a tree or cluster) graph.

    Returns (chosen level class D, chosen level, per-level counts,
    network).  ``network.programs[root].output["decision_round"]`` is
    the Lemma 2.3 quantity; ``staggered_by_level=True`` selects the
    remark's improved schedule (decision by ``t1 + M``, flat in k).
    """
    network = Network(graph, word_limit=word_limit)
    network.run(
        lambda ctx: DiamDOMProgram(ctx, root, k, staggered_by_level)
    )
    flags = network.output_field("in_dominating_set")
    dominating_set = {v for v, flag in flags.items() if flag}
    root_output = network.programs[root].output
    return (
        dominating_set,
        root_output["chosen_level"],
        root_output["level_counts"],
        network,
    )
