"""Distributed minimum k-dominating set on a tree, plus the induced
nearest-dominator partition.

This is the library's *correct-by-construction* cluster subroutine (see
the reproduction note R1 in :mod:`repro.core.existence`): a single
convergecast evaluates the classic tree k-domination DP, so the output
is an exact minimum — hence at most ``floor(n / (k + 1))`` for
``n >= k + 1`` by Meir–Moon, which is precisely the bound Lemma 2.1
needs — and is always k-dominating.  A k-round multi-source wave then
assigns every node its nearest dominator, yielding the partition of
§1.2 with ``Rad(P) <= k`` (Corollary 3.9(b)).

Round complexity: ``O(depth(T) + k)`` — the same budget the paper
spends running ``DiamDOM`` inside a cluster.

Message contents are ``O(log k)`` bits: the DP state is a pair of
distances capped at ``k + 1``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..sim.model import Envelope
from ..sim.network import Network
from ..sim.program import Context, NodeProgram, ScriptedProgram
from ..sim.runner import StagedRun
from .existence import _require_k

#: Sentinel for "no uncovered node in the subtree".
NO_UNCOVERED = -1


class TreeKDomProgram(NodeProgram):
    """Bottom-up DP convergecast; marks ``in_dominating_set``.

    Per-node state sent to the parent: ``(uncov, cov)`` where ``uncov``
    is the distance to the farthest uncovered node in the subtree
    (``-1`` for none) and ``cov`` the distance to the nearest subtree
    dominator (capped at ``k + 1`` = "unusable").
    """

    # Message-driven convergecast: a node fires exactly once, when the
    # last child DP state arrives (leaves fire at start).
    TICK_EVERY_ROUND = False

    def __init__(
        self,
        ctx: Context,
        root: Any,
        parent_of: Dict[Any, Optional[Any]],
        k: int,
    ):
        super().__init__(ctx)
        _require_k(k)
        self.k = k
        self.is_root = ctx.node == root
        self.parent = parent_of.get(ctx.node)
        self.children = tuple(
            nb for nb in ctx.neighbors if parent_of.get(nb) == ctx.node
        )
        self._child_states: List[Tuple[int, int]] = []
        self.in_dominating_set = False

    def _maybe_fire(self) -> None:
        if len(self._child_states) < len(self.children):
            return
        cap = self.k + 1
        uncov_candidates = [0] + [
            u + 1 for u, _c in self._child_states if u != NO_UNCOVERED
        ]
        a = max(uncov_candidates)
        cov_candidates = [min(c + 1, cap) for _u, c in self._child_states]
        b = min(cov_candidates) if cov_candidates else cap
        if a + b <= self.k:
            state = (NO_UNCOVERED, b)
        elif a >= self.k:
            self.in_dominating_set = True
            state = (NO_UNCOVERED, 0)
        else:
            state = (a, b)
        if self.is_root:
            if state[0] != NO_UNCOVERED:
                self.in_dominating_set = True
        else:
            self.send(self.parent, "DP", state[0], state[1])
        self.output["in_dominating_set"] = self.in_dominating_set
        self.halt()

    def on_start(self) -> None:
        self._maybe_fire()

    def on_round(self, inbox: List[Envelope]) -> None:
        for envelope in inbox:
            if envelope.tag() == "DP":
                self._child_states.append(
                    (envelope.payload[1], envelope.payload[2])
                )
        self._maybe_fire()


class NearestDominatorProgram(ScriptedProgram):
    """k-round multi-source wave assigning each node its closest
    dominator (ties to the smallest id), the partition rule of §1.2.

    Outputs: ``dominator`` (or ``None`` if out of range — impossible for
    a genuinely k-dominating input) and ``dominator_distance``.
    """

    # Event-driven: the wave acts only on DOM arrivals; the one
    # spontaneous action is finishing at distance k, booked as a wakeup
    # so uncovered stretches of the wait cost no invocations.
    TICK_EVERY_ROUND = False

    def __init__(self, ctx: Context, is_dominator: bool, k: int):
        super().__init__(ctx)
        _require_k(k)
        self.k = k
        self.is_dominator = is_dominator
        self.dominator: Optional[Any] = None
        self.dominator_distance: Optional[int] = None

    def script(self):
        start = self.round
        if self.is_dominator:
            self.dominator = self.node
            self.dominator_distance = 0
            if self.k > 0:
                self.broadcast("DOM", self.node, 1)
        if self.k > 0:
            # Everyone resumes at distance k to write outputs and halt,
            # whether or not the wave ever reached them.
            self.request_wakeup(self.k)
        while self.round - start < self.k:
            inbox = yield
            distance = self.round - start
            if self.dominator is None:
                offers = sorted(
                    envelope.payload[1]
                    for envelope in inbox
                    if envelope.tag() == "DOM"
                )
                if offers:
                    self.dominator = offers[0]
                    self.dominator_distance = distance
                    if distance < self.k:
                        self.broadcast("DOM", self.dominator, distance + 1)
        self.output["dominator"] = self.dominator
        self.output["dominator_distance"] = self.dominator_distance


def tree_kdominating_set(
    graph: Graph,
    root: Any,
    parent_of: Dict[Any, Optional[Any]],
    k: int,
    staged: Optional[StagedRun] = None,
    backend: str = "reference",
) -> Tuple[Set[Any], Partition, StagedRun]:
    """Run the DP + partition wave on a tree with known parent pointers.

    Returns (dominating set, nearest-dominator partition, staging info).

    ``backend="dense"`` evaluates the DP as per-height scatter-reduces
    and the wave as k scatter-min label propagations — same outputs,
    stage rounds, metrics, and (under observation) a byte-identical
    event stream, replayed through two network-shaped runs in the same
    registration order as the reference pair.  Malformed parent maps
    fall back to the reference engine so its failure modes are
    preserved.
    """
    staged = staged if staged is not None else StagedRun()
    if backend == "dense":
        from ..sim.dense import require_numpy
        from ..sim.dense.forest import plan_tree_kdom

        require_numpy()
        _require_k(k)
        plan = plan_tree_kdom(graph, root, parent_of)
        if plan is not None:
            return _tree_kdominating_set_dense(graph, plan, k, staged)
    elif backend != "reference":
        raise ValueError(f"unknown backend {backend!r}")

    dp_network = Network(graph)
    dp_network.run(lambda ctx: TreeKDomProgram(ctx, root, parent_of, k))
    staged.record("kdom-dp", dp_network.metrics)
    flags = dp_network.output_field("in_dominating_set")
    dominators = {v for v, flag in flags.items() if flag}

    wave_network = Network(graph)
    wave_network.run(lambda ctx: NearestDominatorProgram(ctx, ctx.node in dominators, k))
    staged.record("kdom-partition", wave_network.metrics)
    assignment = wave_network.output_field("dominator")
    missing = [v for v, d in assignment.items() if d is None]
    if missing:
        raise RuntimeError(
            f"nodes {missing!r} found no dominator within {k} hops; "
            f"the dominating set is not k-dominating"
        )
    partition = Partition.from_center_map(assignment)
    return dominators, partition, staged


def _tree_kdominating_set_dense(
    graph: Graph, plan, k: int, staged: StagedRun
) -> Tuple[Set[Any], Partition, StagedRun]:
    from ..sim.dense.core import np
    from ..sim.dense.forest import (
        dense_kdom_dp_run,
        dense_wave_run,
        partition_from_labels,
    )

    in_dom, dp_run = dense_kdom_dp_run(graph, plan, k)
    staged.record("kdom-dp", dp_run.metrics)
    nodes = plan.csr.nodes
    dominators = {nodes[row] for row in in_dom.nonzero()[0].tolist()}

    label, dist, wave_run = dense_wave_run(graph, plan, in_dom, k)
    staged.record("kdom-partition", wave_run.metrics)
    if (label < 0).any():  # pragma: no cover - the DP is exactly k-dominating
        missing = [nodes[r] for r in np.flatnonzero(label < 0).tolist()]
        raise RuntimeError(
            f"nodes {missing!r} found no dominator within {k} hops; "
            f"the dominating set is not k-dominating"
        )
    partition = partition_from_labels(plan.csr, label)
    return dominators, partition, staged
