"""Procedure ``SimpleMST`` (§4.1–4.4): a ``(k + 1, n)`` spanning forest
of MST fragments in ``O(k)`` rounds.

A controlled Gallager–Humblet–Spira process: nodes start as singleton
fragments; in each synchronous phase ``i`` (``i = 1 .. ceil(log2(k+1))``)
every fragment whose rooted depth is at most ``2^i`` is *active* and
merges along its minimum-weight outgoing edge; deeper fragments sit the
phase out (but still accept merges onto them).  After the last phase
every fragment has at least ``k + 1`` nodes (active fragments at least
double per phase; a halted fragment already has more than ``2^i``
nodes), every fragment tree is a subtree of the MST (cut rule, distinct
weights), and the total time is ``sum_i O(2^i) = O(k)``.

Phase schedule (all nodes share it, derived from ``k``), with
``L = 2^i``; one slot = one round:

=========  =======================================================
slots      action
=========  =======================================================
0..L       probe: root floods its id with depth labels to depth L
L+1..2L+1  echo: depth-d nodes report ``too_deep`` at slot 2L+1-d
2L+2..3L+1 root broadcasts ACTIVE if depth <= L
3L+1       every active node sends its fragment id over all edges
3L+2       edges classified internal/outgoing; local MOE chosen
3L+2..4L+2 convergecast: depth-d nodes upcast subtree MOE at
           slot 4L+2-d, discarding all but the lightest (the paper's
           "discarded once a lower weight edge is known")
4L+2..5L+2 rootship transfer: XFR token walks to the MOE endpoint,
           reversing parent pointers en route
5L+2       the new root sends CONNECT over the MOE
5L+3       merges resolve: reciprocal CONNECT -> higher id wins the
           combined root; otherwise the sender is absorbed
=========  =======================================================

Phase length ``5 * 2^i + 3`` (the paper states ``5 * 2^i + 2``; one
slot of difference from making the id-exchange its own slot —
reproduction note R4; the O(k) total of Lemma 4.1 is unaffected).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..graphs.graph import Graph
from ..sim.model import Envelope
from ..sim.network import Network
from ..sim.program import Context, ScriptedProgram
from .partition_common import log2_phase_count

#: Sentinel id for "the minimum outgoing edge lives at this very node".
_SELF = "self"


class SimpleMSTProgram(ScriptedProgram):
    """One node of Procedure ``SimpleMST``.

    Outputs: ``parent`` (fragment-tree parent or None), ``children``,
    ``is_root``, ``fragment_id`` (possibly stale in halted fragments —
    faithful to §4.2's discussion), ``tree_edges`` (incident MST edges).
    """

    # Event-driven scheduling: the phase schedule is pure slot
    # arithmetic, so the slot of every spontaneous action (one taken on
    # an empty inbox) is computable the moment the state it depends on
    # is learned — and that state always arrives in a message, while the
    # node is awake.  ``run_phase`` derives the current slot from
    # ``self.round`` instead of counting yields, and each handler books
    # a wakeup for the next slot at which this node must act.
    TICK_EVERY_ROUND = False

    def __init__(self, ctx: Context, k: int):
        super().__init__(ctx)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k
        self.phases = log2_phase_count(k)
        self.parent: Optional[Any] = None
        self.children: Set[Any] = set()
        self.is_root = True
        self.fragment_id: Any = ctx.node

    # ------------------------------------------------------------------
    def script(self):
        for i in range(1, self.phases + 1):
            yield from self.run_phase(2 ** i)
        self.output["parent"] = self.parent
        self.output["children"] = tuple(sorted(self.children, key=str))
        self.output["is_root"] = self.is_root
        self.output["fragment_id"] = self.fragment_id
        tree_edges = set(self.children)
        if self.parent is not None:
            tree_edges.add(self.parent)
        self.output["tree_edges"] = tuple(sorted(tree_edges, key=str))

    # ------------------------------------------------------------------
    def run_phase(self, L: int):
        # Per-phase state.
        self.depth: Optional[int] = None
        self.active = False
        self._too_deep = False
        self._echo_too_deep = False
        self._best_weight: Optional[float] = None
        self._best_source: Optional[Any] = None  # child id or _SELF
        self._own_edge_target: Optional[Any] = None
        self._is_vstar = False
        self._sent_connect_to: Optional[Any] = None
        self._got_connect_from: Set[Any] = set()

        # Slot bookkeeping for event-driven wakeups: slot = round offset
        # from the start of the phase, exactly the yield count of the
        # original lockstep loop.
        self._L = L
        self._phase_start = self.round
        end = 5 * L + 3
        # Children are stable until the transfer/merge slots (>= 4L+2),
        # well after the last PRB/ACT forward; sort them once per phase.
        self._kids = sorted(self.children, key=str)

        # Slot 0: roots launch the probe.
        if self.is_root:
            self.depth = 0
            self.fragment_id = self.node
            if L >= 1:
                for child in self._kids:
                    self.send(child, "PRB", self.node, 1)
            self._wake_at(2 * L + 1)  # activity verdict
        # Every node resumes at the phase boundary: merge resolution
        # runs there and the next phase's slot 0 follows immediately.
        self._wake_at(end)
        while True:
            inbox = yield
            slot = self.round - self._phase_start
            self._phase_slot(slot, L, inbox)
            if slot >= end:
                break

    def _wake_at(self, slot: int) -> None:
        """Book an invocation at phase slot ``slot`` (no-op if current)."""
        delay = self._phase_start + slot - self.round
        if delay >= 1:
            self.request_wakeup(delay)

    # ------------------------------------------------------------------
    def _phase_slot(self, slot: int, L: int, inbox: List[Envelope]) -> None:
        for envelope in inbox:
            tag = envelope.tag()
            if tag == "PRB":
                self._handle_probe(envelope, L)
            elif tag == "ECH":
                if envelope.payload[1]:
                    self._echo_too_deep = True
            elif tag == "ACT":
                self._handle_active(envelope)
            elif tag == "MOE":
                self._handle_moe(envelope)
            elif tag == "XFR":
                self._handle_transfer(envelope)
            elif tag == "CON":
                self._got_connect_from.add(envelope.sender)
            # FID handled collectively below.

        # Echo schedule: depth-d nodes report at slot 2L + 1 - d.
        if (
            self.depth is not None
            and not self.is_root
            and slot == 2 * L + 1 - self.depth
        ):
            self.send(self.parent, "ECH", self._too_deep or self._echo_too_deep)
        # Root verdict at slot 2L + 1.
        if self.is_root and slot == 2 * L + 1:
            self.active = not (self._too_deep or self._echo_too_deep)
            if self.active:
                for child in self._kids:
                    self.send(child, "ACT")
                self._wake_at(3 * L + 1)
        # Fragment-id exchange at slot 3L + 1.
        if slot == 3 * L + 1 and self.active:
            for neighbor in self.neighbors:
                self.send(neighbor, "FID", self.fragment_id)
            # Classification must run next slot even if every neighbour
            # is inactive and sends no FID.
            self._wake_at(3 * L + 2)
        # Edge classification at slot 3L + 2.
        if slot == 3 * L + 2 and self.active:
            self._classify_edges(inbox)
            # Own convergecast / transfer-launch slot; leaves (and the
            # root of a singleton fragment) hear no MOE beforehand.
            if self.depth is not None:
                self._wake_at(4 * L + 2 - self.depth)
        # Convergecast schedule: depth-d nodes upcast at slot 4L + 2 - d.
        if (
            self.active
            and self.depth is not None
            and slot == 4 * L + 2 - self.depth
        ):
            if self.is_root:
                self._launch_transfer()
            else:
                self.send(self.parent, "MOE", self._best_weight)
        # CONNECT at slot 5L + 2.
        if slot == 5 * L + 2 and self._is_vstar and self._own_edge_target is not None:
            self._sent_connect_to = self._own_edge_target
            self.send(self._own_edge_target, "CON", self.node)
        # Merge resolution at slot 5L + 3.
        if slot == 5 * L + 3:
            self._resolve_merges()

    # -- probe / activity ------------------------------------------------
    def _handle_probe(self, envelope: Envelope, L: int) -> None:
        _tag, root_id, depth = envelope.payload
        self.depth = depth
        self.fragment_id = root_id
        if depth < L:
            for child in self._kids:
                self.send(child, "PRB", root_id, depth + 1)
        elif self.children:
            # The fragment continues below the probe horizon.
            self._too_deep = True
        # Echo slot: leaves (and horizon nodes) hear nothing in between.
        self._wake_at(2 * L + 1 - depth)

    def _handle_active(self, envelope: Envelope) -> None:
        self.active = True
        for child in self._kids:
            self.send(child, "ACT")
        self._wake_at(3 * self._L + 1)

    # -- minimum outgoing edge ---------------------------------------------
    def _classify_edges(self, inbox: List[Envelope]) -> None:
        same_fragment = {
            envelope.sender
            for envelope in inbox
            if envelope.tag() == "FID" and envelope.payload[1] == self.fragment_id
        }
        candidates = [
            (self.ctx.weight(nb), nb)
            for nb in self.neighbors
            if nb not in same_fragment
        ]
        if candidates:
            weight, target = min(candidates)
            self._best_weight = weight
            self._best_source = _SELF
            self._own_edge_target = target

    def _handle_moe(self, envelope: Envelope) -> None:
        weight = envelope.payload[1]
        if weight is None:
            return
        if self._best_weight is None or weight < self._best_weight:
            self._best_weight = weight
            self._best_source = envelope.sender

    # -- rootship transfer ----------------------------------------------------
    def _launch_transfer(self) -> None:
        if self._best_weight is None:
            return  # no outgoing edge anywhere: the fragment spans G
        if self._best_source == _SELF:
            self._is_vstar = True
            self._wake_at(5 * self._L + 2)  # CONNECT slot
            return
        self._pass_rootship(self._best_source)

    def _handle_transfer(self, envelope: Envelope) -> None:
        old_parent = envelope.sender
        self.children.add(old_parent)
        self.parent = None
        if self._best_source == _SELF or self._best_source is None:
            self._is_vstar = True
            self.is_root = True
            self._wake_at(5 * self._L + 2)  # CONNECT slot
        else:
            self._pass_rootship(self._best_source)

    def _pass_rootship(self, child: Any) -> None:
        self.send(child, "XFR")
        self.children.discard(child)
        self.parent = child
        self.is_root = False

    # -- merging ----------------------------------------------------------
    def _resolve_merges(self) -> None:
        for sender in sorted(self._got_connect_from, key=str):
            if self._sent_connect_to == sender:
                # Reciprocal CONNECT over the shared minimum edge: the
                # higher id becomes the root of the combined fragment.
                if self.node > sender:
                    self.children.add(sender)
                else:
                    self.parent = sender
                    self.is_root = False
            else:
                # Another fragment merged onto us here.
                self.children.add(sender)
        if (
            self._sent_connect_to is not None
            and self._sent_connect_to not in self._got_connect_from
        ):
            # One-sided CONNECT: we are absorbed by the other fragment.
            self.parent = self._sent_connect_to
            self.is_root = False


def simple_mst_forest(
    graph: Graph, k: int, word_limit: int = 8
) -> Tuple[Dict[Any, Optional[Any]], List[Set[Any]], "Network"]:
    """Run Procedure ``SimpleMST`` on a weighted graph.

    Returns (fragment parent map, list of fragment node sets, network).
    """
    network = Network(graph, word_limit=word_limit)
    network.run(lambda ctx: SimpleMSTProgram(ctx, k))
    parents = network.output_field("parent")
    fragments = _components_from_parents(parents)
    return parents, fragments, network


def _components_from_parents(
    parents: Dict[Any, Optional[Any]]
) -> List[Set[Any]]:
    adjacency: Dict[Any, Set[Any]] = {v: set() for v in parents}
    for v, p in parents.items():
        if p is not None:
            adjacency[v].add(p)
            adjacency[p].add(v)
    seen: Set[Any] = set()
    components: List[Set[Any]] = []
    for start in sorted(parents, key=str):
        if start in seen:
            continue
        stack = [start]
        component = set()
        while stack:
            v = stack.pop()
            if v in component:
                continue
            component.add(v)
            stack.extend(adjacency[v] - component)
        seen |= component
        components.append(component)
    return components
