"""The paper's contribution: fast distributed small k-dominating sets.

Public API:

* :func:`fastdom_graph` — Theorem 4.4: k-dominating set of size at most
  ``n / (k + 1)`` on a general graph in O(k log* n) rounds.
* :func:`fastdom_tree` — Theorem 3.2: the tree case.
* :func:`diam_dom` — §2.2: the diameter-time algorithm with pipelined
  censuses (Lemma 2.3).
* :func:`dom_partition`, :func:`dom_partition_1`, :func:`dom_partition_2`
  — the §3.2 tree-partition ladder.
* :func:`simple_mst_forest` — §4.1–4.4: the (k+1, n) spanning forest of
  MST fragments.
* :mod:`repro.core.existence` — sequential Lemma 2.1 constructions.
"""

from .balanced_dom import balanced_dom, repair_singletons
from .diam_dom import DiamDOMProgram, diam_dom
from .existence import (
    greedy_kdominating_set,
    is_k_dominating_in_tree,
    level_class_construction,
    level_classes,
    minimum_kdominating_set,
)
from .fastdom_graph import fastdom_graph
from .fastdom_tree import fastdom_tree
from .kdom_tree import (
    NearestDominatorProgram,
    TreeKDomProgram,
    tree_kdominating_set,
)
from .partition_basic import dom_partition_1
from .partition_bounded import dom_partition_2
from .partition_common import log2_phase_count
from .partition_fast import dom_partition
from .small_dom_set import SmallDomSetProgram, small_dom_set
from .spanning_forest import SimpleMSTProgram, simple_mst_forest

__all__ = [
    "DiamDOMProgram",
    "NearestDominatorProgram",
    "SimpleMSTProgram",
    "SmallDomSetProgram",
    "TreeKDomProgram",
    "balanced_dom",
    "diam_dom",
    "dom_partition",
    "dom_partition_1",
    "dom_partition_2",
    "fastdom_graph",
    "fastdom_tree",
    "greedy_kdominating_set",
    "is_k_dominating_in_tree",
    "level_class_construction",
    "level_classes",
    "log2_phase_count",
    "minimum_kdominating_set",
    "repair_singletons",
    "simple_mst_forest",
    "small_dom_set",
    "tree_kdominating_set",
]
