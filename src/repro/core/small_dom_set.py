"""Procedure ``Small-Dom-Set`` — the Lemma 3.2 contract.

The paper uses the `[GKP]` procedure as a black box with this contract
(Lemma 3.2): on an n-vertex tree, n >= 2, compute a dominating set ``D``
with ``|D| <= ceil(n / 2)`` in ``O(log* n)`` rounds with O(log n)-bit
messages, such that every node of ``D`` has a neighbour outside ``D``.
The `[GKP]` internals are not reproduced in this paper, so we supply a
contract-equivalent construction (DESIGN.md §2):

1. 3-colour the rooted tree (Cole–Vishkin + shift-down, O(log* n));
2. compute a maximal matching (three colour-phases, O(1) extra);
3. every unmatched node *attaches* to a matched neighbour (one exists,
   by maximality), which thereby becomes a dominator; matched pairs
   where neither endpoint attracted an attachment elect their
   smaller-id endpoint.

The output clusters are stars centred at dominators, every cluster has
at least two nodes, and exactly one dominator per cluster gives
``|D| <= floor(n / 2)`` — so the construction also satisfies the
*balanced* property (c) of Definition 3.1 directly (the paper obtains
it by repairing singletons, see :mod:`repro.core.balanced_dom`).

Isolated nodes (possible when the procedure runs on a forest) become
singleton self-dominating clusters flagged ``singleton``; callers that
require property (c) must not feed isolated nodes (the partition
algorithms of §3.2 remove single-node trees before invoking this).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..sim.network import Network
from ..symmetry.matching import TreeMatchingProgram


class SmallDomSetProgram(TreeMatchingProgram):
    """Distributed star-partition dominating set on a rooted forest.

    Outputs: ``in_dominating_set`` (bool), ``dominator`` (cluster
    centre; self for dominators), ``singleton`` (True only for isolated
    nodes).
    """

    def script(self):
        yield from self.run_three_coloring()
        yield from self.run_matching()
        yield from self.run_star_partition()
        self.output["color"] = self.color
        self.output["partner"] = self.partner
        self.output["in_dominating_set"] = self.in_dominating_set
        self.output["dominator"] = self.dominator
        self.output["singleton"] = self.singleton

    def run_star_partition(self):
        self.in_dominating_set = False
        self.dominator: Optional[Any] = None
        self.singleton = False

        if not self.neighbors:
            # Isolated node: self-dominating singleton (callers avoid this).
            self.in_dominating_set = True
            self.dominator = self.node
            self.singleton = True
            yield
            yield
            return

        # Slot A: unmatched nodes attach to their smallest matched
        # neighbour (every neighbour is matched, by maximality).
        attach_target: Optional[Any] = None
        if self.partner is None:
            candidates = sorted(
                nb for nb in self.neighbors if nb in self.known_matched
            )
            if not candidates:  # pragma: no cover - maximality guarantees
                raise RuntimeError(
                    f"unmatched node {self.node} has no matched neighbour"
                )
            attach_target = candidates[0]
            self.send(attach_target, "ATTACH")
            self.dominator = attach_target
        inbox = yield

        # Slot B: matched nodes tell their partner whether they
        # attracted attachments (and hence must be a dominator).
        got_attachment = any(e.tag() == "ATTACH" for e in inbox)
        if self.partner is not None:
            self.send(self.partner, "PAIR", got_attachment)
        inbox = yield

        # Slot C: resolve roles within each matched pair.
        if self.partner is not None:
            partner_got = False
            for envelope in inbox:
                if envelope.tag() == "PAIR" and envelope.sender == self.partner:
                    partner_got = envelope.payload[1]
            if got_attachment:
                self.in_dominating_set = True
                self.dominator = self.node
            elif partner_got:
                self.dominator = self.partner
            else:
                center = min(self.node, self.partner)
                self.in_dominating_set = center == self.node
                self.dominator = center


def small_dom_set(
    graph: Graph,
    parent_of: Dict[Any, Optional[Any]],
    word_limit: int = 8,
) -> Tuple[Set[Any], Partition, "Network"]:
    """Run ``Small-Dom-Set`` on a rooted forest.

    Returns (dominating set, star partition, network).
    """
    from ..symmetry.cole_vishkin import derive_id_bound

    network = Network(graph, word_limit=word_limit)
    bound = derive_id_bound(graph)
    network.run(
        lambda ctx: SmallDomSetProgram(ctx, parent_of, id_bound=bound)
    )
    flags = network.output_field("in_dominating_set")
    dominators = {v for v, flag in flags.items() if flag}
    partition = Partition.from_center_map(network.output_field("dominator"))
    return dominators, partition, network
