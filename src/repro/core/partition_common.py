"""Shared bookkeeping for the tree-partition algorithms of §3.2.

The paper's partition algorithms repeatedly (1) run ``BalancedDOM`` on a
*contracted* tree whose nodes are the current clusters, and (2) merge
clusters along the resulting star partition.  The distributed
implementation appoints a centre per cluster and relays through cluster
members (§3.2.1); its cost is charged through
:class:`repro.sim.virtual.VirtualNetwork`.  This module holds the
cluster bookkeeping that the drivers share:

* clusters are connected subtrees of the input tree ``T``, identified by
  their *top* (the member closest to ``T``'s root) — uniqueness follows
  from connectivity in a tree;
* the contracted forest's orientation is induced by ``T``'s: the parent
  of cluster ``C`` is the cluster containing ``parent_T(top(C))``;
* per-cluster depths are measured by BFS inside the member set from the
  top, matching the ``Depth`` counters the paper maintains (§3.2.3).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Set, Tuple

from ..graphs.graph import Graph
from ..graphs.partition import Cluster, Partition
from ..sim.virtual import ContractedGraph, VirtualNetwork


def singleton_clusters(tree: Graph) -> Dict[Any, Set[Any]]:
    """The initial partition: every node its own cluster."""
    return {v: {v} for v in tree.nodes}


def cluster_depths(
    tree: Graph, members: Set[Any], top: Any
) -> Dict[Any, int]:
    """Depths of members below ``top`` inside the T-induced subtree."""
    if len(members) == 1:
        # Early phases are dominated by singleton clusters; skip the
        # BFS scaffolding (the lone member must be the top).
        if top not in members:
            raise ValueError(f"cluster with top {top} is not connected in T")
        return {top: 0}
    depth = {top: 0}
    queue = deque([top])
    while queue:
        v = queue.popleft()
        for u in tree.neighbors(v):
            if u in members and u not in depth:
                depth[u] = depth[v] + 1
                queue.append(u)
    if set(depth) != set(members):
        raise ValueError(f"cluster with top {top} is not connected in T")
    return depth


def cluster_depth(tree: Graph, members: Set[Any], top: Any) -> int:
    """Maximum member depth below the top (the paper's cluster depth)."""
    return max(cluster_depths(tree, members, top).values())


def tops_by_member(clusters: Dict[Any, Set[Any]]) -> Dict[Any, Any]:
    owner: Dict[Any, Any] = {}
    for top, members in clusters.items():
        for v in members:
            owner[v] = top
    return owner


def recompute_top(
    members: Set[Any], t_depth: Dict[Any, int]
) -> Any:
    """The member closest to T's root (smallest T-depth; ties by id)."""
    return min(members, key=lambda v: (t_depth[v], str(v)))


def contracted_parent_map(
    t_parent: Dict[Any, Optional[Any]],
    clusters: Dict[Any, Set[Any]],
) -> Dict[Any, Optional[Any]]:
    """Orientation of the contracted forest induced by T's rooting.

    The parent of cluster ``C`` is the cluster owning ``parent_T(top(C))``
    when that cluster is present, else ``None`` (forest root).
    """
    owner = tops_by_member(clusters)
    parent: Dict[Any, Optional[Any]] = {}
    for top in clusters:
        t_par = t_parent.get(top)
        if t_par is not None and t_par in owner:
            parent[top] = owner[t_par]
        else:
            parent[top] = None
    return parent


def build_contracted_forest(
    tree: Graph, clusters: Dict[Any, Set[Any]]
) -> ContractedGraph:
    """Contract the live clusters over the T-induced subgraph on their
    members (removed clusters simply don't appear, splitting the tree
    into a forest exactly as the paper describes)."""
    live_members = set()
    for members in clusters.values():
        live_members |= members
    base = tree.subgraph(live_members)
    return ContractedGraph(base, clusters)


def merge_by_center_map(
    clusters: Dict[Any, Set[Any]],
    center_map: Dict[Any, Any],
    t_depth: Dict[Any, int],
) -> Dict[Any, Set[Any]]:
    """Union clusters along a star partition (top -> dominator top)."""
    groups: Dict[Any, List[Any]] = {}
    for top, dominator_top in center_map.items():
        groups.setdefault(dominator_top, []).append(top)
    merged: Dict[Any, Set[Any]] = {}
    for tops in groups.values():
        members: Set[Any] = set()
        for top in tops:
            members |= clusters[top]
        new_top = recompute_top(members, t_depth)
        merged[new_top] = members
    return merged


def run_balanced_dom_on_forest(
    tree: Graph,
    clusters: Dict[Any, Set[Any]],
    t_parent: Dict[Any, Optional[Any]],
) -> Tuple[Dict[Any, Any], VirtualNetwork]:
    """Run the star-partition dominating set on the contracted forest.

    Returns (top -> dominator-top map, the virtual network for round
    accounting).
    """
    from .small_dom_set import SmallDomSetProgram

    contracted = build_contracted_forest(tree, clusters)
    contracted_parents = contracted_parent_map(t_parent, clusters)
    virtual = VirtualNetwork(contracted)
    # Contracted node ids are centre ids from the *original* tree, so
    # the colouring schedule must be derived from the original id space.
    id_bound = max(
        tree.num_nodes, max((v + 1 for v in tree.nodes), default=1)
    )
    virtual.run(
        lambda ctx: SmallDomSetProgram(ctx, contracted_parents, id_bound=id_bound)
    )
    center_map = virtual.output_field("dominator")
    return center_map, virtual


def clusters_to_partition(
    tree: Graph, clusters: Dict[Any, Set[Any]]
) -> Partition:
    return Partition(
        Cluster(top, set(members)) for top, members in clusters.items()
    )


def log2_phase_count(k: int) -> int:
    """The paper's iteration count ``ceil(log2(k + 1))``."""
    if k < 0:
        raise ValueError("k must be non-negative")
    count = 0
    while (1 << count) < k + 1:
        count += 1
    return count
