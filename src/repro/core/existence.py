"""Sequential constructions for small k-dominating sets on trees.

Three constructions live here:

* :func:`level_classes` / :func:`level_class_construction` — the
  construction in the paper's proof of Lemma 2.1 ([PU]): split the
  rooted tree into depth classes mod ``k + 1`` and return the smallest
  class.  The size bound ``|D| <= max(1, floor(n / (k + 1)))`` always
  holds (averaging).  **Reproduction note (R1):** the paper's claim
  that *every* class is k-dominating is false in general — a class
  ``l`` fails when some leaf has depth ``< l`` (shallow leaves cannot
  reach the class below them and have no class member above).  See
  ``tests/core/test_existence.py::test_lemma21_domination_gap`` for the
  concrete counterexample, and :mod:`repro.core.kdom_tree` for the
  convergecast algorithm this library uses where correctness matters.

* :func:`greedy_kdominating_set` — the Meir–Moon greedy (repeatedly
  dominate a deepest leaf from its k-th ancestor), which *does* achieve
  the Lemma 2.1 bound with guaranteed domination.

* :func:`minimum_kdominating_set` — exact minimum k-domination on a
  tree by the classic linear-time DP; the sequential reference for the
  distributed program in :mod:`repro.core.kdom_tree`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from ..graphs.tree import RootedTree

_INF = float("inf")
_NEG_INF = float("-inf")


def level_classes(tree: RootedTree, k: int) -> List[Set[Any]]:
    """The k + 1 depth classes ``D_l = {v : depth(v) = l mod (k + 1)}``."""
    _require_k(k)
    classes: List[Set[Any]] = [set() for _ in range(k + 1)]
    for v, depth in tree.depth.items():
        classes[depth % (k + 1)].add(v)
    return classes


def level_class_construction(tree: RootedTree, k: int) -> Tuple[Set[Any], int]:
    """Lemma 2.1 construction, verbatim: the smallest depth class.

    Returns (the set, the chosen class index).  If ``k >= height`` the
    root alone is returned, as in the paper's proof.
    """
    _require_k(k)
    if k >= tree.height:
        return {tree.root}, 0
    classes = level_classes(tree, k)
    best = min(range(k + 1), key=lambda lvl: (len(classes[lvl]), lvl))
    return classes[best], best


def greedy_kdominating_set(tree: RootedTree, k: int) -> Set[Any]:
    """Greedy: repeatedly cover a deepest uncovered node from its
    ancestor ``k`` steps up.  Guarantees k-domination and size at most
    ``ceil(n / (k + 1))`` (each pick but the last covers a fresh path of
    ``k + 1`` nodes).  The exact Lemma 2.1 bound is met by
    :func:`minimum_kdominating_set` (Meir–Moon: the tree minimum is at
    most ``n / (k + 1)`` whenever ``n >= k + 1``)."""
    _require_k(k)
    dominators: Set[Any] = set()
    order = sorted(tree.nodes, key=lambda v: (-tree.depth[v], str(v)))
    covered: Set[Any] = set()
    for v in order:
        if v in covered:
            continue
        # Walk k steps toward the root (or stop at the root).
        w = v
        for _ in range(k):
            parent = tree.parent[w]
            if parent is None:
                break
            w = parent
        dominators.add(w)
        covered |= _ball(tree, w, k)
    return dominators


def _ball(tree: RootedTree, center: Any, k: int) -> Set[Any]:
    """Nodes within tree distance k of ``center``."""
    ball = {center}
    frontier = [center]
    for _ in range(k):
        next_frontier = []
        for v in frontier:
            nbrs = list(tree.children[v])
            if tree.parent[v] is not None:
                nbrs.append(tree.parent[v])
            for u in nbrs:
                if u not in ball:
                    ball.add(u)
                    next_frontier.append(u)
        frontier = next_frontier
    return ball


def minimum_kdominating_set(tree: RootedTree, k: int) -> Set[Any]:
    """Exact minimum k-dominating set of a tree (classic bottom-up DP).

    State per node: ``uncov`` = distance to the farthest not-yet-covered
    node in the subtree (−inf if none), ``cov`` = distance to the
    nearest dominator in the subtree (+inf if none).  A node joins the
    set exactly when its farthest uncovered descendant would otherwise
    slip out of range.
    """
    _require_k(k)
    dominators: Set[Any] = set()
    uncov: Dict[Any, float] = {}
    cov: Dict[Any, float] = {}
    for v in tree.postorder():
        child_uncov = [uncov[c] + 1 for c in tree.children[v]]
        child_cov = [cov[c] + 1 for c in tree.children[v]]
        a = max([0.0] + child_uncov)
        b = min(child_cov) if child_cov else _INF
        if a + b <= k:
            uncov[v], cov[v] = _NEG_INF, b
        elif a >= k:
            dominators.add(v)
            uncov[v], cov[v] = _NEG_INF, 0.0
        else:
            uncov[v], cov[v] = a, b
    if uncov[tree.root] != _NEG_INF:
        dominators.add(tree.root)
    return dominators


def is_k_dominating_in_tree(tree: RootedTree, dominators: Set[Any], k: int) -> bool:
    """Check k-domination with distances measured inside the tree."""
    _require_k(k)
    covered: Set[Any] = set()
    for d in dominators:
        covered |= _ball(tree, d, k)
    return covered >= set(tree.nodes)


def _require_k(k: int) -> None:
    if k < 0:
        raise ValueError("k must be non-negative")
