"""Iterated-logarithm utilities.

``log* n`` is the number of times ``log2`` must be applied to ``n``
before the result drops to at most 1.  The paper's headline complexities
(``O(k log* n)``) are measured against this function, and the
Cole–Vishkin colour-reduction schedule is derived from the closely
related bit-length iteration computed here.
"""

from __future__ import annotations

import math


def log2_ceil(n: int) -> int:
    """Smallest integer b with 2**b >= n (n >= 1)."""
    if n < 1:
        raise ValueError("n >= 1 required")
    return (n - 1).bit_length()


def log_star(n: int) -> int:
    """Iterated logarithm: applications of log2 until the value <= 1."""
    if n < 1:
        raise ValueError("n >= 1 required")
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def cv_color_bits_after_step(bits: int) -> int:
    """Bit-length of Cole–Vishkin colours after one reduction step.

    With colours of ``bits`` bits, the new colour is ``2 * i + b`` with
    ``i < bits``, hence at most ``2 * bits - 1``.
    """
    if bits < 1:
        raise ValueError("bits >= 1 required")
    return (2 * bits - 1).bit_length()


def cv_iterations(n: int) -> int:
    """Rounds of Cole–Vishkin needed to reach colours < 6 from ids < n.

    The colour space shrinks from ``B`` bits to ``ceil(log2(2B))`` bits
    per step; once colours fit in 3 bits one further step lands them in
    ``[0, 6)``.  This is the ``O(log* n)`` schedule every node can
    compute locally from ``n``.
    """
    if n < 1:
        raise ValueError("n >= 1 required")
    bits = max(1, (max(n - 1, 1)).bit_length())
    iterations = 0
    while bits > 3:
        bits = cv_color_bits_after_step(bits)
        iterations += 1
    # One final step maps 3-bit colours into [0, 6).
    return iterations + 1
