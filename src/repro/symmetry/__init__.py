"""Symmetry-breaking substrate: log*, Cole–Vishkin, 3-colouring, tree MIS
and maximal matching — the `[GPS]` machinery behind Lemma 3.2."""

from .cole_vishkin import (
    SixColoringProgram,
    cv_step,
    cv_step_root,
    derive_id_bound,
    six_color_forest,
)
from .log_star import cv_color_bits_after_step, cv_iterations, log2_ceil, log_star
from .matching import TreeMatchingProgram, tree_maximal_matching
from .mis_tree import TreeMISProgram, tree_mis
from .three_coloring import PALETTE, ThreeColoringProgram, three_color_forest

__all__ = [
    "PALETTE",
    "SixColoringProgram",
    "ThreeColoringProgram",
    "TreeMISProgram",
    "TreeMatchingProgram",
    "cv_color_bits_after_step",
    "cv_iterations",
    "cv_step",
    "cv_step_root",
    "derive_id_bound",
    "log2_ceil",
    "log_star",
    "six_color_forest",
    "three_color_forest",
    "tree_maximal_matching",
    "tree_mis",
]
