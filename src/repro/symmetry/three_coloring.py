"""3-colouring of rooted forests: Cole–Vishkin + shift-down reduction.

After the 6-colouring of :mod:`repro.symmetry.cole_vishkin`, colours
``5, 4, 3`` are eliminated one per phase by the standard shift-down
procedure (Goldberg–Plotkin–Shannon):

* **shift down** — every non-root adopts its parent's current colour
  (making sibling sets monochromatic; the root picks a fresh colour in
  ``{0, 1, 2}``), then
* **recolour** — every node whose colour is the phase's target picks
  the smallest colour in ``{0, 1, 2}`` used by neither its parent nor
  its (monochromatic) children.

Each phase costs O(1) rounds, keeping the total at O(log* n).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..sim.network import Network
from .cole_vishkin import SixColoringProgram

PALETTE = (0, 1, 2)


class ThreeColoringProgram(SixColoringProgram):
    """Distributed 3-colouring of a rooted forest in O(log* n) rounds.

    Output: ``color`` in ``{0, 1, 2}``.
    """

    def script(self):
        yield from self.run_three_coloring()
        self.output["color"] = self.color

    def run_three_coloring(self):
        """Generator: 6-colouring followed by three shift-down phases."""
        yield from self.run_six_coloring()
        for target in (5, 4, 3):
            # Shift down: learn the parent's current colour ...
            self.send_color_down()
            inbox = yield
            if self.parent is None:
                old = self.color
                self.color = min(x for x in PALETTE if x != old)
            else:
                parent_color = self.parent_color(inbox)
                if parent_color is None:
                    raise RuntimeError(
                        f"node {self.node} missed its parent's colour"
                    )
                self.color = parent_color
            # ... exchange post-shift colours with parent and children ...
            self.send_color_down()
            if self.parent is not None:
                self.send(self.parent, "C", self.color)
            inbox = yield
            parent_color = self.parent_color(inbox)
            child_colors = {
                envelope.payload[1]
                for envelope in inbox
                if envelope.tag() == "C" and envelope.sender in self.children
            }
            # ... and recolour the target class into the palette.
            if self.color == target:
                used = set(child_colors)
                if parent_color is not None:
                    used.add(parent_color)
                self.color = min(x for x in PALETTE if x not in used)


def three_color_forest(
    graph, parent_of: Dict[Any, Optional[Any]], word_limit: int = 8
) -> Tuple[Dict[Any, int], "Network"]:
    """Run :class:`ThreeColoringProgram`; return colours and the network."""
    from .cole_vishkin import derive_id_bound

    network = Network(graph, word_limit=word_limit)
    bound = derive_id_bound(graph)
    network.run(
        lambda ctx: ThreeColoringProgram(ctx, parent_of, id_bound=bound)
    )
    return network.output_field("color"), network
