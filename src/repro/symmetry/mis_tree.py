"""Maximal independent set on rooted forests in O(log* n) rounds.

This is the `[GPS]` procedure the paper cites in Lemma 3.2: compute a
3-colouring, then sweep the colour classes.  In phase ``c`` every
still-undominated node of colour ``c`` joins the MIS and announces it;
neighbours mark themselves dominated.  Independence holds because a
colour class is independent; maximality because a node skipped in its
own phase must already have an MIS neighbour.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..sim.network import Network
from .three_coloring import PALETTE, ThreeColoringProgram


class TreeMISProgram(ThreeColoringProgram):
    """Distributed MIS on a rooted forest.  Output: ``in_mis`` (bool)."""

    def script(self):
        yield from self.run_three_coloring()
        yield from self.run_mis()
        self.output["color"] = self.color
        self.output["in_mis"] = self.in_mis

    def run_mis(self):
        self.in_mis = False
        self.dominated = False
        for c in PALETTE:
            if self.color == c and not self.dominated:
                self.in_mis = True
                self.broadcast("MIS")
            inbox = yield
            if any(envelope.tag() == "MIS" for envelope in inbox):
                if self.in_mis:
                    raise RuntimeError(
                        f"MIS independence violated at node {self.node}"
                    )
                self.dominated = True


def tree_mis(
    graph, parent_of: Dict[Any, Optional[Any]], word_limit: int = 8
) -> Tuple[set, "Network"]:
    """Run :class:`TreeMISProgram`; return the MIS and the network."""
    from .cole_vishkin import derive_id_bound

    network = Network(graph, word_limit=word_limit)
    bound = derive_id_bound(graph)
    network.run(lambda ctx: TreeMISProgram(ctx, parent_of, id_bound=bound))
    flags = network.output_field("in_mis")
    return {v for v, flag in flags.items() if flag}, network
