"""Cole–Vishkin colour reduction on rooted trees and forests.

This is the engine behind the `[GPS]` black box the paper relies on
(Lemma 3.2): an ``O(log* n)`` distributed 6-colouring of a rooted
forest.  Every node starts with its unique id as its colour; in each
round a node looks at the lowest bit position ``i`` in which its colour
differs from its parent's and adopts the new colour ``2 * i + b`` where
``b`` is its own bit at position ``i``.  After ``cv_iterations(n)``
rounds (a schedule every node derives locally from ``n``) all colours
lie in ``[0, 6)``.

Roots have no parent; they act as if their parent differed in bit 0,
which preserves properness (see :func:`cv_step_root`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..sim.network import Network
from ..sim.program import Context, ScriptedProgram
from .log_star import cv_iterations


def cv_step(color: int, parent_color: int) -> int:
    """One Cole–Vishkin reduction step against the parent's colour."""
    if color == parent_color:
        raise ValueError("colouring is not proper: equal parent/child colours")
    differing = color ^ parent_color
    i = (differing & -differing).bit_length() - 1
    b = (color >> i) & 1
    return 2 * i + b


def cv_step_root(color: int) -> int:
    """Root variant: pretend the (absent) parent differs in bit 0.

    A child that also chose ``i = 0`` must have had a differing bit 0,
    so the root's new colour ``b0`` cannot collide with it; a child that
    chose ``i > 0`` lands at ``>= 2`` while the root lands at ``<= 1``.
    """
    return 2 * 0 + (color & 1)


class SixColoringProgram(ScriptedProgram):
    """Distributed 6-colouring of a rooted forest in O(log* n) rounds.

    ``parent_of`` maps every node to its tree parent (``None`` for
    roots).  Node identifiers must be non-negative integers below ``n``
    — the unique-id assumption of the model.  Output: ``color``.
    """

    def __init__(
        self,
        ctx: Context,
        parent_of: Dict[Any, Optional[Any]],
        id_bound: Optional[int] = None,
    ):
        """``id_bound``: exclusive upper bound on node identifiers, used
        to derive the (globally agreed) reduction schedule.  Defaults to
        ``n``; contracted networks whose node ids come from a larger
        original graph must pass that graph's size."""
        super().__init__(ctx)
        if not isinstance(ctx.node, int) or ctx.node < 0:
            raise ValueError("colouring requires non-negative integer node ids")
        self.parent = parent_of.get(ctx.node)
        self.children: Tuple[Any, ...] = tuple(
            nb for nb in ctx.neighbors if parent_of.get(nb) == ctx.node
        )
        self.color: int = ctx.node
        self.total_steps = cv_iterations(max(ctx.n, id_bound or 1, 1))
        if ctx.node >= max(ctx.n, id_bound or 1):
            raise ValueError(
                f"node id {ctx.node} exceeds the declared id bound "
                f"{max(ctx.n, id_bound or 1)}; pass id_bound"
            )

    def send_color_down(self) -> None:
        for child in self.children:
            self.send(child, "C", self.color)

    def parent_color(self, inbox) -> Optional[int]:
        for envelope in inbox:
            if envelope.tag() == "C" and envelope.sender == self.parent:
                return envelope.payload[1]
        return None

    def script(self):
        yield from self.run_six_coloring()
        self.output["color"] = self.color

    def run_six_coloring(self):
        """Generator implementing the CV rounds; reusable by subclasses."""
        self.send_color_down()
        for _step in range(self.total_steps):
            inbox = yield
            if self.parent is None:
                self.color = cv_step_root(self.color)
            else:
                parent_color = self.parent_color(inbox)
                if parent_color is None:
                    raise RuntimeError(
                        f"node {self.node} missed its parent's colour"
                    )
                self.color = cv_step(self.color, parent_color)
            self.send_color_down()
        # A final idle round lets the last colour broadcast drain so the
        # round accounting is identical at every node.
        yield


def derive_id_bound(graph) -> int:
    """Exclusive upper bound on the graph's integer node ids.

    The model assumes ids in ``[0, n)``; graphs with sparse labels
    (contracted graphs, forests carved out of larger graphs) need the
    true bound so every node derives the same reduction schedule.
    """
    return max(
        (v + 1 for v in graph.nodes if isinstance(v, int)),
        default=1,
    )


def six_color_forest(
    graph, parent_of: Dict[Any, Optional[Any]], word_limit: int = 8
) -> Tuple[Dict[Any, int], "Network"]:
    """Run :class:`SixColoringProgram` on ``graph``; return colours and
    the network (for metrics)."""
    network = Network(graph, word_limit=word_limit)
    bound = derive_id_bound(graph)
    network.run(lambda ctx: SixColoringProgram(ctx, parent_of, id_bound=bound))
    return network.output_field("color"), network
