"""Maximal matching on rooted forests in O(log* n) rounds.

Built on the 3-colouring: three proposal phases, one per colour class.
In phase ``c`` every unmatched node of colour ``c`` whose parent is not
known to be matched proposes to its parent; an unmatched parent accepts
the smallest-id proposer and both endpoints announce ``MATCHED`` to
their remaining neighbours.

Properness of the colouring guarantees a node is never simultaneously a
proposer and a potential acceptor in the same phase (its parent has a
different colour, and so do its children).  Maximality: if an edge
(child v, parent p) ended with both endpoints unmatched, then in phase
``colour(v)`` node v would have proposed (p never announced MATCHED)
and p, being unmatched, would have accepted some proposer —
contradiction.

This module is the engine of the repository's ``Small-Dom-Set``
substitute (see DESIGN.md §2): a maximal matching plus one attachment
round yields a star partition with all the properties of the paper's
Lemma 3.2, and the balanced property (c) of Definition 3.1 for free.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from ..sim.network import Network
from .three_coloring import PALETTE, ThreeColoringProgram


class TreeMatchingProgram(ThreeColoringProgram):
    """Distributed maximal matching on a rooted forest.

    Output: ``partner`` (matched neighbour, or ``None``).
    """

    def script(self):
        yield from self.run_three_coloring()
        yield from self.run_matching()
        self.output["color"] = self.color
        self.output["partner"] = self.partner

    def run_matching(self):
        self.partner: Optional[Any] = None
        self.known_matched: Set[Any] = set()
        for c in PALETTE:
            # Slot A: colour-c unmatched nodes propose to their parent.
            proposed = False
            if (
                self.partner is None
                and self.color == c
                and self.parent is not None
                and self.parent not in self.known_matched
            ):
                self.send(self.parent, "PROPOSE")
                proposed = True
            inbox = yield
            # Slot B: unmatched parents accept the smallest proposer and
            # break the news to everyone else.
            proposals = sorted(
                envelope.sender
                for envelope in inbox
                if envelope.tag() == "PROPOSE"
            )
            if self.partner is None and proposals:
                winner = proposals[0]
                self.partner = winner
                self.send(winner, "ACCEPT")
                for neighbor in self.neighbors:
                    if neighbor != winner:
                        self.send(neighbor, "MATCHED")
            inbox = yield
            # Slot C: accepted proposers record the match and announce it.
            newly_matched_as_proposer = False
            for envelope in inbox:
                if envelope.tag() == "ACCEPT" and envelope.sender == self.parent:
                    if not proposed:  # pragma: no cover - defensive
                        raise RuntimeError(
                            f"unsolicited ACCEPT at node {self.node}"
                        )
                    self.partner = self.parent
                    newly_matched_as_proposer = True
                elif envelope.tag() == "MATCHED":
                    self.known_matched.add(envelope.sender)
            if newly_matched_as_proposer:
                for neighbor in self.neighbors:
                    if neighbor != self.partner:
                        self.send(neighbor, "MATCHED")
            inbox = yield
            # Slot D: absorb the proposers' announcements (same round in
            # which the next phase's proposals are decided).
            for envelope in inbox:
                if envelope.tag() == "MATCHED":
                    self.known_matched.add(envelope.sender)


def tree_maximal_matching(
    graph, parent_of: Dict[Any, Optional[Any]], word_limit: int = 8
) -> Tuple[Dict[Any, Optional[Any]], "Network"]:
    """Run :class:`TreeMatchingProgram`; return partner map and network."""
    from .cole_vishkin import derive_id_bound

    network = Network(graph, word_limit=word_limit)
    bound = derive_id_bound(graph)
    network.run(
        lambda ctx: TreeMatchingProgram(ctx, parent_of, id_bound=bound)
    )
    return network.output_field("partner"), network
