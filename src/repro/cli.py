"""Command-line interface: run the paper's algorithms on real or
generated graphs.

Examples::

    python -m repro info --generate grid:12x12
    python -m repro kdom --generate torus:10x10 --k 3
    python -m repro mst --generate random:200:0.05 --algorithm fast
    python -m repro mst --graph my_network.edges --algorithm ghs
    python -m repro partition --generate tree:500 --k 8
    python -m repro faults --generate random:60:0.08 --workload kdom --k 2 \
        --drop 0.05 --crash 7@3 --reliable
    python -m repro trace --graph tree:n=64 --algo fast-mst --out trace.jsonl
    python -m repro report trace.jsonl
    python -m repro report trace.jsonl --json
    python -m repro report --bench
    python -m repro sweep --workload kdom --spec tree:n=200 --spec grid:12x12 \
        --seeds 0,1,2 --ks 2,4,8 --workers 4 --out sweep.jsonl
    python -m repro sweep --fast --shard 0/2 --out shard0.jsonl
    python -m repro sweep --fast --profile-workers --out sweep.jsonl
    python -m repro status sweep.jsonl --final
    python -m repro top --dir .
    python -m repro sweep --fast --deadline-s 30 --out sweep.jsonl
    python -m repro merge-stores shard0.jsonl shard1.jsonl --out merged.jsonl
    python -m repro merge-stores shard0.jsonl --allow-partial --out part.jsonl
    python -m repro repair-store sweep.jsonl
    python -m repro chaos --fast --seed 7 --out-dir chaos-drill

Graph specs: ``grid:RxC``, ``torus:RxC``, ``ring:N``, ``tree:N``,
``random:N:P`` (random connected with extra-edge probability P),
``complete:N``; or ``--graph FILE`` with a ``u v [weight]`` edge list.
Every kind also accepts key=value segments (``tree:n=64``,
``grid:rows=3,cols=5``, ``random:n=50,p=0.1``), and ``--graph`` falls
back to spec parsing when its value is not a file.  Weights are
auto-assigned (distinct, polynomial) when missing and an algorithm
needs them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .applications.aggregates import count_nodes, leader_election
from .core import dom_partition, fastdom_graph
from .graphs import (
    GraphSpecError,
    RootedTree,
    assign_unique_weights,
    diameter,
    has_unique_weights,
    load_edge_list,
    parse_graph_spec,
)
from .graphs.graph import Graph
from .mst import fast_mst, ghs_mst, kruskal_mst, pipeline_only_mst
from .sim import (
    DEFAULT_WORD_LIMIT,
    RELIABLE_HEADER_WORDS,
    FaultConfig,
    FaultConfigError,
    FaultInjector,
    Network,
    make_reliable,
)
from .verify import (
    check_run_report,
    domination_radius,
    nontermination_detectors,
    surviving_kdomination,
)


def build_graph(args: argparse.Namespace) -> Graph:
    if args.graph:
        # A --graph value that is not a file but looks like a generator
        # spec (contains ':') is treated as one, so
        # `repro trace --graph tree:n=64 ...` works without --generate.
        if os.path.exists(args.graph):
            with open(args.graph) as handle:
                return load_edge_list(handle.read())
        if ":" in args.graph:
            return generate(args.graph, seed=args.seed)
        raise SystemExit(
            f"--graph {args.graph!r}: no such file (expected an edge list, "
            f"or a spec like tree:n=64 / grid:4x4)"
        )
    if args.generate:
        return generate(args.generate, seed=args.seed)
    raise SystemExit("one of --graph or --generate is required")


def generate(spec: str, seed: int = 0) -> Graph:
    """Build a graph from a spec like ``grid:12x12`` or ``tree:n=64``.

    Thin CLI wrapper over :func:`repro.graphs.parse_graph_spec` (the
    parser proper lives in the graph layer so the sweep subsystem can
    share it); parse errors become the usual ``SystemExit``.
    """
    try:
        return parse_graph_spec(spec, seed=seed)
    except GraphSpecError as exc:
        raise SystemExit(str(exc))


def ensure_weights(graph: Graph, seed: int) -> Graph:
    if not has_unique_weights(graph):
        assign_unique_weights(graph, seed=seed)
    return graph


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def cmd_info(args: argparse.Namespace) -> int:
    g = build_graph(args)
    print(f"nodes:    {g.num_nodes}")
    print(f"edges:    {g.num_edges}")
    print(f"diameter: {diameter(g)}")
    leader, rounds, _net = leader_election(g)
    print(f"leader (max id): {leader}  [elected in {rounds} rounds]")
    total, staged = count_nodes(g, leader)
    print(f"distributed count from leader: {total} "
          f"[{staged.total_rounds} rounds]")
    return 0


def cmd_kdom(args: argparse.Namespace) -> int:
    g = ensure_weights(build_graph(args), args.seed)
    dominators, partition, staged = fastdom_graph(g, args.k)
    radius = domination_radius(g, dominators)
    print(f"k = {args.k}")
    print(f"|D| = {len(dominators)}  "
          f"(bound {max(1, g.num_nodes // (args.k + 1))})")
    print(f"domination radius = {radius}")
    print(f"clusters = {partition.num_clusters}")
    print(f"rounds = {staged.total_rounds}  {staged.breakdown()}")
    if args.verbose:
        print(f"D = {sorted(dominators, key=str)}")
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    g = build_graph(args)
    root = min(g.nodes, key=str)
    rt = RootedTree.from_graph(g, root)
    partition, staged = dom_partition(g, root, rt.parent, args.k)
    sizes = sorted(c.size for c in partition.clusters)
    radii = [c.radius_in(g) for c in partition.clusters]
    print(f"clusters = {partition.num_clusters}")
    print(f"sizes: min {sizes[0]}, max {sizes[-1]} (k+1 = {args.k + 1})")
    print(f"max radius = {max(radii)} (bound 5k+2 = {5 * args.k + 2})")
    print(f"rounds = {staged.total_rounds}")
    return 0


def cmd_mst(args: argparse.Namespace) -> int:
    g = ensure_weights(build_graph(args), args.seed)
    reference = kruskal_mst(g)
    if args.algorithm == "fast":
        edges, staged, diag = fast_mst(g)
        rounds = staged.total_rounds
        extra = f"k={diag['k']}, clusters={diag['clusters']}"
    elif args.algorithm == "ghs":
        edges, metrics = ghs_mst(g)
        rounds, extra = metrics.rounds, "controlled GHS"
    elif args.algorithm == "pipeline":
        edges, staged = pipeline_only_mst(g)
        rounds, extra = staged.total_rounds, "pipeline over singletons"
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown algorithm {args.algorithm}")
    weight = sum(g.weight(u, v) for u, v in edges)
    status = "exact" if edges == reference else "WRONG"
    print(f"algorithm = {args.algorithm} ({extra})")
    print(f"MST weight = {weight}  [{status} vs sequential Kruskal]")
    print(f"rounds = {rounds}")
    if args.verbose:
        for u, v in sorted(edges, key=str):
            print(f"  {u} - {v}  ({g.weight(u, v)})")
    return 0 if edges == reference else 1


def parse_crash_spec(specs) -> list:
    """Parse repeated ``--crash NODE@ROUND`` flags into (node, round)."""
    crashes = []
    for spec in specs or ():
        node_text, sep, round_text = spec.partition("@")
        if not sep:
            raise SystemExit(
                f"bad crash spec {spec!r}: expected NODE@ROUND, e.g. 7@3"
            )
        try:
            round_number = int(round_text)
        except ValueError:
            raise SystemExit(f"bad crash round in {spec!r}")
        node: object = node_text
        try:
            node = int(node_text)
        except ValueError:
            pass  # string node labels are legal in edge-list graphs
        crashes.append((node, round_number))
    return crashes


def cmd_faults(args: argparse.Namespace) -> int:
    g = build_graph(args)
    try:
        config = FaultConfig(
            drop_rate=args.drop,
            duplicate_rate=args.duplicate,
            delay_rate=args.delay,
            max_delay=args.max_delay,
            crashes=parse_crash_spec(args.crash),
            seed=args.fault_seed,
        )
    except FaultConfigError as exc:
        raise SystemExit(f"bad fault configuration: {exc}")

    root = min(g.nodes, key=str)
    if args.workload == "bfs":
        from .primitives.bfs import BFSTreeProgram

        workload_graph = g
        factory = lambda ctx: BFSTreeProgram(ctx, root)  # noqa: E731
    elif args.workload == "flood":
        from .primitives.flooding import FloodProgram

        workload_graph = g
        factory = lambda ctx: FloodProgram(ctx, root, value=1)  # noqa: E731
    else:  # kdom: the tree DP on a BFS spanning tree of the graph
        from .core.kdom_tree import TreeKDomProgram
        from .graphs.distances import bfs_tree

        _dist, parent_of = bfs_tree(g, root)
        workload_graph = g.edge_subgraph(
            [(v, p) for v, p in parent_of.items() if p is not None]
        )
        factory = lambda ctx: TreeKDomProgram(  # noqa: E731
            ctx, root, parent_of, args.k
        )

    word_limit = DEFAULT_WORD_LIMIT
    if args.reliable:
        if args.timeout < 3:
            raise SystemExit(
                f"bad --timeout: must be >= 3 rounds (the fault-free "
                f"round trip is 2), got {args.timeout}"
            )
        factory = make_reliable(
            factory, timeout=args.timeout, max_retries=args.retries
        )
        word_limit += RELIABLE_HEADER_WORDS
    network = Network(
        workload_graph, word_limit=word_limit, faults=FaultInjector(config)
    )
    report = network.run(factory, max_rounds=args.max_rounds)

    print(f"workload = {args.workload} on n={workload_graph.num_nodes} "
          f"(reliable={'yes' if args.reliable else 'no'})")
    print(f"fault plan: {len(report.plan.events)} event(s), "
          f"seed {config.seed}")
    print(report.summary())

    health = check_run_report(report)
    if args.workload == "kdom":
        flags = network.output_field("in_dominating_set")
        dominators = {v for v, flag in flags.items() if flag}
        health = health.merged_with(
            surviving_kdomination(
                workload_graph, dominators, args.k, crashed=report.crashed()
            )
        )
    detectors = nontermination_detectors(network.outputs())
    if detectors:
        print(f"non-termination detected locally by: "
              f"{sorted(detectors, key=str)}")
    print(f"resilience: {health.summary()}")
    if args.verbose:
        for event in report.plan.events:
            print(f"  round {event.round:>4}  {event.kind:<9} "
                  f"{event.node} -> {event.target}  (+{event.detail})")
    return 0 if health.ok else 1


def _trace_fault_injector(args: argparse.Namespace) -> Optional[FaultInjector]:
    """Build the optional fault injector for ``repro trace``."""
    if not (
        args.drop or args.duplicate or args.delay or args.crash
    ):
        return None
    if args.algo not in ("bfs", "flood"):
        raise SystemExit(
            f"fault flags are only supported for the bfs/flood workloads, "
            f"not {args.algo!r} (composite drivers build internal networks "
            f"the injector cannot follow)"
        )
    try:
        config = FaultConfig(
            drop_rate=args.drop,
            duplicate_rate=args.duplicate,
            delay_rate=args.delay,
            max_delay=args.max_delay,
            crashes=parse_crash_spec(args.crash),
            seed=args.fault_seed,
        )
    except FaultConfigError as exc:
        raise SystemExit(f"bad fault configuration: {exc}")
    return FaultInjector(config)


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        JsonlTraceWriter,
        MetricsCollector,
        ascii_timeline,
        channel_heatmap,
        observe,
        read_trace,
        summary_lines,
        validate_trace,
    )

    g = build_graph(args)
    if args.backend == "dense" and args.algo not in ("kdom", "kdom-tree"):
        print(
            f"--backend dense applies to the kdom workloads, not "
            f"{args.algo!r}",
            file=sys.stderr,
        )
        return 2
    injector = _trace_fault_injector(args)
    meta = {
        "algo": args.algo,
        "spec": args.graph or args.generate,
        "seed": args.seed,
        "nodes": g.num_nodes,
        "edges": g.num_edges,
    }
    writer = JsonlTraceWriter(args.out, meta=meta)
    collector = MetricsCollector()
    staged = None
    with observe(writer, collector) as obs:
        if args.algo == "fast-mst":
            ensure_weights(g, args.seed)
            _edges, staged, _diag = fast_mst(g)
        elif args.algo == "kdom":
            ensure_weights(g, args.seed)
            backend = "dense" if args.backend == "dense" else "inline"
            _dominators, _partition, staged = fastdom_graph(
                g, args.k, backend=backend
            )
        elif args.algo == "kdom-tree":
            from .core import tree_kdominating_set

            root = min(g.nodes, key=str)
            rooted = RootedTree.from_graph(g, root)
            _dominators, _partition, staged = tree_kdominating_set(
                g, root, rooted.parent, args.k, backend=args.backend
            )
        else:
            root = min(g.nodes, key=str)
            if args.algo == "bfs":
                from .primitives.bfs import BFSTreeProgram

                factory = lambda ctx: BFSTreeProgram(ctx, root)  # noqa: E731
            else:  # flood
                from .primitives.flooding import FloodProgram

                factory = lambda ctx: FloodProgram(ctx, root, value=1)  # noqa: E731
            network = Network(g, faults=injector)
            network.run(factory, max_rounds=args.max_rounds)
        if staged is not None:
            obs.record_phases(staged)

    trace = read_trace(args.out)
    problems = validate_trace(trace)
    print(f"wrote {args.out} ({len(trace.events)} events, "
          f"schema {trace.schema})")
    for line in summary_lines(trace, collector):
        print(line)
    if staged is not None:
        breakdown = trace.phase_breakdown()
        matches = breakdown == dict(staged.breakdown())
        print(f"phase totals match StagedRun breakdown: "
              f"{'yes' if matches else 'NO — ' + repr(breakdown)}")
        if not matches:
            problems.append("trace phases disagree with StagedRun")
    print()
    print(ascii_timeline(trace, width=args.width))
    print()
    print(channel_heatmap(trace, channels=args.channels, width=args.width))
    if problems:
        print(f"\ntrace INVALID: {len(problems)} problem(s)")
        for problem in problems[:10]:
            print(f"  - {problem}")
        return 1
    return 0


#: Schema tag on ``repro report --json`` output.
REPORT_SCHEMA = "repro-report/1"


def _report_json(args: argparse.Namespace, scan, problems) -> int:
    """Emit the machine-readable report document (``--json``)."""
    import json

    doc = {
        "schema": REPORT_SCHEMA,
        "trace": args.trace,
        "trace_schema": scan.schema if scan is not None else None,
        "meta": scan.meta if scan is not None else {},
        "events": scan.events_total if scan is not None else 0,
        "by_kind": scan.by_kind if scan is not None else {},
        "fabric_events": scan.fabric_by_kind if scan is not None else {},
        "runs": len(scan.runs) if scan is not None else 0,
        "phases": len(scan.phases) if scan is not None else 0,
        "phase_breakdown": scan.phase_breakdown() if scan is not None else {},
        "total_rounds": scan.total_rounds if scan is not None else 0,
        "valid": not problems,
        "problems": list(problems),
    }
    print(json.dumps(doc, sort_keys=True, indent=2))
    return 1 if problems else 0


def _report_bench(args: argparse.Namespace) -> int:
    """Render the perf trajectory (``--bench``) from the BENCH history."""
    from . import perf

    path = args.history or perf.DEFAULT_HISTORY
    entries, problems = perf.load_history(path)
    if not entries:
        print(f"no perf history at {path} — run `repro perf` to record one")
        return 1
    if getattr(args, "warehouse", None):
        from .warehouse import Warehouse, WarehouseError

        try:
            with Warehouse(args.warehouse) as warehouse:
                added, skipped = warehouse.ingest_history(entries)
        except WarehouseError as exc:
            raise SystemExit(str(exc))
        print(
            f"warehouse {args.warehouse}: +{added} bench entr"
            f"{'y' if added == 1 else 'ies'}, {skipped} already recorded — "
            f"query with `repro query --bench --db {args.warehouse}`"
        )
    for line in perf.perf_trajectory(entries, source=path):
        print(line)
    for problem in problems[:5]:
        print(f"note: {problem}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .obs import (
        TraceValidationError,
        ascii_timeline,
        channel_heatmap,
        scan_trace,
        summary_lines,
    )

    if args.bench:
        return _report_bench(args)
    if not args.trace:
        raise SystemExit("a trace file is required (unless using --bench)")
    # One streaming pass (iter_trace) — constant-ish memory, so
    # sweep-scale traces report without materialising their event list.
    try:
        scan = scan_trace(args.trace)
    except TraceValidationError as exc:
        if args.json:
            return _report_json(args, None, list(exc.problems))
        print(f"unreadable trace {args.trace!r}:")
        for problem in exc.problems[:10]:
            print(f"  - {problem}")
        return 1
    problems = scan.problems()
    if args.json:
        return _report_json(args, scan, problems)
    meta = ", ".join(f"{k}={v}" for k, v in sorted(scan.meta.items()))
    print(f"trace {args.trace} (schema {scan.schema})")
    if meta:
        print(f"meta: {meta}")
    for line in summary_lines(scan):
        print(line)
    print()
    print(ascii_timeline(scan, width=args.width))
    print()
    print(channel_heatmap(scan, channels=args.channels, width=args.width))
    if problems:
        print(f"\ntrace INVALID: {len(problems)} problem(s)")
        for problem in problems[:10]:
            print(f"  - {problem}")
        return 1
    print("\ntrace valid")
    return 0


def _parse_int_list(text: str, flag: str) -> tuple:
    """Parse a ``--seeds 0,1,2`` style comma list of integers."""
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"bad {flag} {text!r}: expected a comma list of ints")
    if not values:
        raise SystemExit(f"bad {flag} {text!r}: at least one value required")
    return values


#: ``repro sweep`` exit code for "ran fine but the grid (or shard) is
#: not yet complete" — e.g. bounded by ``--max-cells``, degraded by
#: quarantined cells, or merged with holes.  Distinct from 1 (a crash
#: or verify failure) so CI can assert the difference.
EXIT_SWEEP_INCOMPLETE = 3


def _build_grid(args: argparse.Namespace, verify: bool = False):
    """The shared grid-construction path of ``sweep`` and ``chaos``."""
    from .batch import SweepGrid, WorkloadError, fast_grid

    try:
        if args.fast:
            return fast_grid(args.workload)
        if not args.spec:
            raise SystemExit(
                "at least one --spec is required (or use --fast for the "
                "built-in CI grid)"
            )
        return SweepGrid(
            workload=args.workload,
            specs=tuple(args.spec),
            seeds=_parse_int_list(args.seeds, "--seeds"),
            ks=_parse_int_list(args.ks, "--ks"),
            verify=verify,
        )
    except WorkloadError as exc:
        raise SystemExit(str(exc))
    except ValueError as exc:
        raise SystemExit(f"bad sweep grid: {exc}")


def cmd_sweep(args: argparse.Namespace) -> int:
    import importlib

    from .batch import (
        StoreError,
        SweepCellError,
        SweepCrashError,
        parse_shard,
        run_sweep,
    )

    for module in args.imports or ():
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise SystemExit(f"--import {module}: {exc}")
    shard = None
    if args.shard is not None:
        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            raise SystemExit(f"bad --shard: {exc}")

    grid = _build_grid(args, verify=args.verify)

    if args.deadline_s is not None and args.deadline_s <= 0:
        raise SystemExit("bad --deadline-s: must be positive")
    if args.max_attempts is not None and args.max_attempts < 1:
        raise SystemExit("bad --max-attempts: must be >= 1")
    echo = print if args.verbose else (lambda line: None)
    profile_dir = args.profile_workers
    if profile_dir == "":
        profile_dir = (args.out or "sweep") + ".profiles"
    try:
        summary = run_sweep(
            grid,
            store_path=args.out,
            backend=args.backend,
            workers=args.workers,
            resume=not args.no_resume,
            max_cells=args.max_cells,
            shard=shard,
            echo=echo,
            deadline_s=args.deadline_s,
            max_attempts=args.max_attempts,
            retry_quarantined=args.retry_quarantined,
            telemetry=not args.no_telemetry,
            status_path=args.status,
            profile_dir=profile_dir,
        )
    except (StoreError, SweepCellError, SweepCrashError) as exc:
        raise SystemExit(str(exc))

    merged = summary.merged
    shard_note = f" [shard {args.shard}]" if shard is not None else ""
    state = "complete" if summary.complete else "INCOMPLETE"
    if summary.quarantined:
        state += f", {summary.quarantined} QUARANTINED"
    print(
        f"sweep {grid.workload}{shard_note}: {summary.total} cell(s) — "
        f"ran {summary.ran}, skipped {summary.skipped} ({state})"
    )
    print(
        f"backend={args.backend} workers={args.workers or 'auto'} "
        f"elapsed={summary.elapsed:.2f}s "
        f"({summary.cells_per_second:.1f} cells/s)"
    )
    print(
        f"merged: rounds(max)={merged.rounds} "
        f"messages={merged.traffic.messages} "
        f"words={merged.traffic.total_words}"
    )
    if args.out:
        print(f"store: {args.out}")
    if profile_dir is not None:
        from .batch import aggregate_profiles

        files, table = aggregate_profiles(profile_dir)
        if files:
            print(f"worker profiles: {len(files)} dump(s) in {profile_dir}")
            print(table)
        else:
            print(f"worker profiles: no dumps in {profile_dir} "
                  f"(every cell skipped?)")
    if grid.verify:
        bad = [
            row["cell"]
            for row in summary.rows
            if row.get("result", {}).get("ok") is False
        ]
        if bad:
            print(f"VERIFY FAILED for {len(bad)} cell(s): {bad[:5]}")
            return 1
        print("verify: all cells ok")
    if summary.complete and not summary.quarantined:
        return 0
    return EXIT_SWEEP_INCOMPLETE


def cmd_merge_stores(args: argparse.Namespace) -> int:
    from .batch import StoreError, merge_stores

    try:
        meta = merge_stores(
            args.stores,
            args.out,
            allow_partial=args.allow_partial,
            holes_path=args.holes,
        )
    except StoreError as exc:
        raise SystemExit(str(exc))
    holes = meta.get("holes", 0)
    print(
        f"merged {len(args.stores)} shard store(s) -> {args.out} "
        f"({meta['cells']} cells, workload {meta['workload']})"
    )
    if holes:
        manifest = args.holes or args.out + ".holes.json"
        print(
            f"PARTIAL merge: {holes} cell(s) missing — holes manifest "
            f"at {manifest}; resume with "
            f"`repro sweep --out {args.out}` to fill them"
        )
        return EXIT_SWEEP_INCOMPLETE
    return 0


def cmd_repair_store(args: argparse.Namespace) -> int:
    from .batch import StoreError, repair_store

    try:
        report, missing = repair_store(args.store, out_path=args.out)
    except StoreError as exc:
        raise SystemExit(str(exc))
    target = args.out or args.store
    print(f"repaired {args.store} -> {target}: {report.summary()}")
    if missing:
        shown = ", ".join(missing[:5])
        more = "" if len(missing) <= 5 else f" (+{len(missing) - 5} more)"
        print(
            f"{len(missing)} cell(s) lost: {shown}{more} — resume with "
            f"`repro sweep --out {target}` to re-run them"
        )
    else:
        print("no cells lost")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from .batch import StoreError
    from .warehouse import IncompleteStoreError, Warehouse

    incomplete = False
    try:
        with Warehouse(args.db) as warehouse:
            for path in args.stores:
                try:
                    report = warehouse.ingest_store(
                        path, allow_partial=args.allow_partial
                    )
                except IncompleteStoreError as exc:
                    print(f"INCOMPLETE {exc}")
                    incomplete = True
                    continue
                print(report.describe())
                if report.holes:
                    incomplete = True
            print(f"warehouse {args.db}: {warehouse.row_count()} row(s) total")
    except StoreError as exc:
        raise SystemExit(str(exc))
    return EXIT_SWEEP_INCOMPLETE if incomplete else 0


def cmd_query(args: argparse.Namespace) -> int:
    from .batch import StoreError
    from .warehouse import (
        BENCH_FIELDS,
        DEFAULT_WAREHOUSE,
        QueryError,
        RESULT_FIELDS,
        Warehouse,
        bench_query_doc,
        bench_samples_from_entries,
        load_store_rows,
        parse_aggs,
        parse_group_by,
        parse_where,
        query_json,
        render_query_table,
        results_query_doc,
    )

    try:
        aggs = parse_aggs(args.agg)
        if args.bench:
            if args.store:
                raise QueryError(
                    "--bench reads a warehouse (--db) or BENCH history "
                    "(--history), not sweep stores"
                )
            where = parse_where(args.where, BENCH_FIELDS)
            group_by = parse_group_by(args.group_by, BENCH_FIELDS)
            if args.db:
                with Warehouse(args.db) as warehouse:
                    samples = warehouse.fetch_bench_samples()
            else:
                from . import perf

                path = args.history or perf.DEFAULT_HISTORY
                entries, _problems = perf.load_history(path)
                samples = bench_samples_from_entries(entries)
            doc = bench_query_doc(samples, where, group_by, aggs)
        else:
            if not args.metric:
                raise QueryError(
                    "--metric is required (e.g. --metric dominators; "
                    "or use --bench for perf history)"
                )
            where = parse_where(args.where, RESULT_FIELDS)
            group_by = parse_group_by(args.group_by, RESULT_FIELDS)
            if args.store:
                rows = load_store_rows(args.store)
            else:
                with Warehouse(args.db or DEFAULT_WAREHOUSE) as warehouse:
                    rows = warehouse.fetch_rows(where)
            doc = results_query_doc(rows, args.metric, where, group_by, aggs)
    except (QueryError, StoreError) as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(query_json(doc))
    else:
        for line in render_query_table(doc):
            print(line)
    return 0 if doc["rows_matched"] else EXIT_SWEEP_INCOMPLETE


def cmd_portfolio(args: argparse.Namespace) -> int:
    from .batch import (
        SweepCellError,
        SweepCrashError,
        portfolio_run,
        render_verdict,
        verdict_path_for,
    )

    seeds = _parse_int_list(args.seeds, "--seeds")
    if args.deadline_s is not None and args.deadline_s <= 0:
        raise SystemExit("bad --deadline-s: must be positive")
    if args.max_attempts is not None and args.max_attempts < 1:
        raise SystemExit("bad --max-attempts: must be >= 1")
    echo = print if args.verbose else (lambda line: None)
    try:
        verdict, _summary = portfolio_run(
            args.workload,
            args.spec,
            seeds,
            k=args.k,
            reduce=args.reduce,
            store_path=args.out,
            backend=args.backend,
            workers=args.workers,
            resume=not args.no_resume,
            deadline_s=args.deadline_s,
            max_attempts=args.max_attempts,
            echo=echo,
        )
    except (ValueError, SweepCellError, SweepCrashError) as exc:
        # PortfolioError, WorkloadError and StoreError are ValueErrors.
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(verdict, sort_keys=True, indent=2))
    else:
        for line in render_verdict(verdict):
            print(line)
        if args.out:
            print(f"store: {args.out}")
            print(f"verdict: {verdict_path_for(args.out)}")
    if verdict["complete"] and verdict["best_seed"] is not None:
        return 0
    return EXIT_SWEEP_INCOMPLETE


def _watch_loop(render, interval: float) -> int:
    """Re-render a status view every ``interval`` seconds until ^C."""
    import time

    try:
        while True:
            lines, done = render()
            # ANSI home+clear keeps the view in place on real terminals
            # and is harmless noise when piped.
            print("\x1b[H\x1b[2J", end="")
            for line in lines:
                print(line)
            if done:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def cmd_status(args: argparse.Namespace) -> int:
    from .batch import (
        StoreError,
        SweepStore,
        read_status,
        render_status,
        render_store_status,
        status_path_for,
    )

    if args.final:
        try:
            meta, rows = SweepStore(args.store).load()
        except StoreError as exc:
            raise SystemExit(str(exc))
        if meta is None:
            raise SystemExit(f"{args.store}: no such store")
        ordered = [rows[key] for key in sorted(rows)]
        for line in render_store_status(meta, ordered):
            print(line)
        return 0

    path = (
        args.store
        if args.store.endswith(".status.json")
        else status_path_for(args.store)
    )

    def render(tolerant: bool = False):
        try:
            status = read_status(path)
        except (OSError, ValueError) as exc:
            # In watch mode a missing sidecar just means the first
            # heartbeat hasn't landed yet (or a read raced the
            # os.replace swap): render a placeholder and retry next
            # tick instead of dying.  One-shot keeps the hard failure.
            if tolerant:
                return [f"(waiting for {path}: {exc})"], False
            raise SystemExit(f"cannot read status file {path}: {exc}")
        state = str(status.get("state", ""))
        return render_status(status), state not in ("running", "starting")

    if args.watch:
        return _watch_loop(lambda: render(tolerant=True), args.interval)
    lines, _done = render()
    for line in lines:
        print(line)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import importlib

    from .serve import ServeConfig, run_server

    for module in args.imports or ():
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise SystemExit(f"--import {module}: {exc}")
    if args.deadline_s is not None and args.deadline_s <= 0:
        raise SystemExit("bad --deadline-s: must be positive")
    if args.cache_size < 1:
        raise SystemExit("bad --cache-size: must be >= 1")
    config = ServeConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        workers=args.workers,
        cache_size=args.cache_size,
        deadline_s=args.deadline_s,
        max_attempts=args.max_attempts,
    )
    return run_server(config)


def cmd_top(args: argparse.Namespace) -> int:
    from .batch import find_status_files, read_status, render_top

    def render():
        paths = find_status_files(args.dir)
        statuses = []
        kept = []
        for path in paths:
            try:
                statuses.append(read_status(path))
                kept.append(path)
            except (OSError, ValueError):
                continue  # torn write or foreign file; skip this round
        all_done = bool(kept) and all(
            str(s.get("state", "")) not in ("running", "starting")
            for s in statuses
        )
        return render_top(statuses, kept), all_done

    if args.watch:
        return _watch_loop(render, args.interval)
    lines, _done = render()
    for line in lines:
        print(line)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from .batch import PoolCrashError, SweepCrashError
    from .batch.chaos import run_chaos

    grid = _build_grid(args)
    echo = print if args.verbose else (lambda line: None)
    try:
        report = run_chaos(
            grid,
            seed=args.seed,
            out_dir=args.out_dir,
            workers=args.workers,
            deadline_s=args.deadline_s,
            max_attempts=args.max_attempts,
            kills=args.kills,
            hangs=args.hangs,
            slows=args.slows,
            corrupts=args.corrupts,
            poisons=args.poisons,
            echo=echo,
        )
    except (PoolCrashError, SweepCrashError) as exc:
        print(f"chaos drill CRASHED the fabric: {exc}")
        return 1
    except ValueError as exc:
        raise SystemExit(f"bad chaos drill: {exc}")

    for line in report.lines():
        print(line)
    for event in report.retry_events:
        kind, task, attempt, reason = event
        print(f"  {kind}: task {task} attempt {attempt} ({reason})")
    if not report.verified:
        return 1
    if report.quarantined_cells:
        return EXIT_SWEEP_INCOMPLETE
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from . import perf

    return perf.main(
        fast=args.fast,
        reps=args.reps,
        output=args.output if args.output is not None else perf.DEFAULT_OUTPUT,
        baseline_path=(
            args.baseline if args.baseline is not None else perf.DEFAULT_BASELINE
        ),
        gate_factor=(
            args.gate_factor
            if args.gate_factor is not None
            else perf.DEFAULT_GATE_FACTOR
        ),
        profile=args.profile,
        no_gate=args.no_gate,
        obs=args.obs,
        workload=args.workload,
        compare=args.compare,
        telemetry=args.telemetry,
        history=None if args.no_history else perf.DEFAULT_HISTORY,
    )


# ---------------------------------------------------------------------------
def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed k-dominating sets and MST (Kutten & Peleg, "
            "PODC 1995) on a CONGEST simulator"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--graph", help="edge-list file (u v [weight] lines)")
        p.add_argument("--generate", help="graph spec, e.g. grid:12x12")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("-v", "--verbose", action="store_true")

    p_info = sub.add_parser("info", help="graph stats + leader election")
    common(p_info)
    p_info.set_defaults(fn=cmd_info)

    p_kdom = sub.add_parser("kdom", help="FastDOM_G k-dominating set")
    common(p_kdom)
    p_kdom.add_argument("--k", type=int, required=True)
    p_kdom.set_defaults(fn=cmd_kdom)

    p_part = sub.add_parser("partition", help="fast DOM_Partition on a tree")
    common(p_part)
    p_part.add_argument("--k", type=int, required=True)
    p_part.set_defaults(fn=cmd_partition)

    p_mst = sub.add_parser("mst", help="distributed MST")
    common(p_mst)
    p_mst.add_argument(
        "--algorithm", choices=("fast", "ghs", "pipeline"), default="fast"
    )
    p_mst.set_defaults(fn=cmd_mst)

    p_faults = sub.add_parser(
        "faults", help="run a workload under seeded fault injection"
    )
    common(p_faults)
    p_faults.add_argument(
        "--workload", choices=("bfs", "flood", "kdom"), default="bfs"
    )
    p_faults.add_argument("--k", type=int, default=2,
                          help="k for the kdom workload")
    p_faults.add_argument("--drop", type=float, default=0.0,
                          help="per-message drop probability")
    p_faults.add_argument("--duplicate", type=float, default=0.0,
                          help="per-message duplication probability")
    p_faults.add_argument("--delay", type=float, default=0.0,
                          help="per-message delay probability")
    p_faults.add_argument("--max-delay", type=int, default=3,
                          help="maximum delay in rounds")
    p_faults.add_argument("--crash", action="append", metavar="NODE@ROUND",
                          help="crash-stop NODE at ROUND (repeatable)")
    p_faults.add_argument("--fault-seed", type=int, default=0,
                          help="seed for the fault adversary")
    p_faults.add_argument("--reliable", action="store_true",
                          help="wrap the workload in ack/retransmit channels")
    p_faults.add_argument("--timeout", type=int, default=4,
                          help="reliable-channel retransmit timeout (rounds)")
    p_faults.add_argument("--retries", type=int, default=8,
                          help="reliable-channel retransmissions per frame")
    p_faults.add_argument("--max-rounds", type=int, default=2000)
    p_faults.set_defaults(fn=cmd_faults)

    p_trace = sub.add_parser(
        "trace",
        help="run an algorithm with observability on; write a JSONL trace",
    )
    common(p_trace)
    p_trace.add_argument(
        "--algo",
        choices=("bfs", "flood", "kdom", "kdom-tree", "fast-mst"),
        default="bfs",
    )
    p_trace.add_argument("--k", type=int, default=2,
                         help="k for the kdom workloads")
    p_trace.add_argument(
        "--backend", choices=("reference", "dense"), default="reference",
        help="execution backend for the kdom workloads; dense kdom-tree "
             "replays array rounds into the trace (byte-identical to "
             "reference)")
    p_trace.add_argument("--out", default="trace.jsonl",
                         help="trace output path (JSONL)")
    p_trace.add_argument("--width", type=int, default=60,
                         help="view width in columns")
    p_trace.add_argument("--channels", type=int, default=12,
                         help="rows in the congestion heatmap")
    p_trace.add_argument("--drop", type=float, default=0.0,
                         help="per-message drop probability (bfs/flood)")
    p_trace.add_argument("--duplicate", type=float, default=0.0,
                         help="per-message duplication probability")
    p_trace.add_argument("--delay", type=float, default=0.0,
                         help="per-message delay probability")
    p_trace.add_argument("--max-delay", type=int, default=3,
                         help="maximum delay in rounds")
    p_trace.add_argument("--crash", action="append", metavar="NODE@ROUND",
                         help="crash-stop NODE at ROUND (repeatable)")
    p_trace.add_argument("--fault-seed", type=int, default=0,
                         help="seed for the fault adversary")
    p_trace.add_argument("--max-rounds", type=int, default=2000)
    p_trace.set_defaults(fn=cmd_trace)

    p_report = sub.add_parser(
        "report", help="validate and summarize a saved JSONL trace"
    )
    p_report.add_argument("trace", nargs="?", default=None,
                          help="trace file written by `repro trace`")
    p_report.add_argument("--width", type=int, default=60,
                          help="view width in columns")
    p_report.add_argument("--channels", type=int, default=12,
                          help="rows in the congestion heatmap")
    p_report.add_argument("--json", action="store_true",
                          help="machine-readable summary (repro-report/1) "
                               "instead of the ASCII views")
    p_report.add_argument("--bench", action="store_true",
                          help="render the perf trajectory from the "
                               "recorded BENCH history instead of a trace")
    p_report.add_argument("--history", default=None, metavar="PATH",
                          help="BENCH history file for --bench "
                               "(default: BENCH_history.jsonl)")
    p_report.add_argument("--warehouse", default=None, metavar="DB",
                          help="with --bench: also ingest the history "
                               "into this warehouse sqlite file so perf "
                               "trajectories are queryable (repro query "
                               "--bench)")
    p_report.set_defaults(fn=cmd_report)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a (spec x seed x k) grid, sharded across workers",
    )
    p_sweep.add_argument("--workload", default="kdom", metavar="NAME",
                         help="registered workload name (built-ins: kdom, "
                              "partition, mst; benchmarks add more via "
                              "--import)")
    p_sweep.add_argument("--import", dest="imports", action="append",
                         metavar="MODULE",
                         help="import MODULE first so its "
                              "@register_workload workloads are available "
                              "(repeatable)")
    p_sweep.add_argument("--spec", action="append", metavar="SPEC",
                         help="graph spec, e.g. tree:n=64 (repeatable)")
    p_sweep.add_argument("--seeds", default="0",
                         help="comma list of seeds, e.g. 0,1,2")
    p_sweep.add_argument("--ks", default="2",
                         help="comma list of k values, e.g. 2,4")
    p_sweep.add_argument("--out", default=None,
                         help="JSONL result store (checkpoint/resume)")
    p_sweep.add_argument("--backend", choices=("inline", "process"),
                         default="process",
                         help="where cells execute (default: process)")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: CPU count)")
    p_sweep.add_argument("--no-resume", action="store_true",
                         help="overwrite an existing store instead of "
                              "skipping its finished cells")
    p_sweep.add_argument("--max-cells", type=int, default=None,
                         help="stop after N pending cells (interrupt "
                              "simulation; resume later; exits 3 while "
                              "cells remain)")
    p_sweep.add_argument("--shard", default=None, metavar="I/N",
                         help="run only every N-th grid cell starting at I "
                              "(multi-host sweeps; combine the stores with "
                              "`repro merge-stores`)")
    p_sweep.add_argument("--verify", action="store_true",
                         help="per-cell correctness checks (radius, MST "
                              "exactness)")
    p_sweep.add_argument("--fast", action="store_true",
                         help="built-in CI-sized 8-cell grid")
    p_sweep.add_argument("--deadline-s", type=float, default=None,
                         help="per-cell deadline in seconds (process "
                              "backend): arms the hung-worker watchdog")
    p_sweep.add_argument("--max-attempts", type=int, default=None,
                         help="retries before a failing cell is quarantined "
                              "as an error row (default 3)")
    p_sweep.add_argument("--retry-quarantined", action="store_true",
                         help="on resume, re-run previously quarantined "
                              "cells instead of keeping their error rows")
    p_sweep.add_argument("--no-telemetry", action="store_true",
                         help="disable fabric telemetry (metrics registry, "
                              "spans, store summary, status heartbeats)")
    p_sweep.add_argument("--status", default=None, metavar="PATH",
                         help="live status sidecar path (default: "
                              "<out>.status.json when --out is given)")
    p_sweep.add_argument("--profile-workers", nargs="?", const="",
                         default=None, metavar="DIR",
                         help="cProfile every cell; dump per-worker .pstats "
                              "under DIR (default <out>.profiles) and print "
                              "the aggregated hot-function table")
    p_sweep.add_argument("-v", "--verbose", action="store_true",
                         help="print one line per finished cell")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_status = sub.add_parser(
        "status",
        help="render a sweep's live status sidecar (or, with --final, "
             "the deterministic summary inside a finished store)",
    )
    p_status.add_argument("store", help="sweep store path (or its "
                                        "*.status.json sidecar directly)")
    p_status.add_argument("--final", action="store_true",
                          help="read the store itself and render its "
                               "deterministic telemetry summary")
    p_status.add_argument("--watch", action="store_true",
                          help="re-render until the sweep finishes (^C "
                               "to stop)")
    p_status.add_argument("--interval", type=float, default=1.0,
                          help="refresh interval for --watch (seconds)")
    p_status.set_defaults(fn=cmd_status)

    p_serve = sub.add_parser(
        "serve",
        help="kdom-as-a-service: a persistent HTTP/JSON query server "
             "over the sweep fabric (docs/service.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8673,
                         help="bind port; 0 picks an ephemeral port")
    p_serve.add_argument("--backend", choices=("inline", "process"),
                         default="process",
                         help="where query cells execute (default: "
                              "process — a persistent SharedPool)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: CPU count)")
    p_serve.add_argument("--cache-size", type=int, default=1024,
                         help="bounded LRU result-cache entries "
                              "(default: 1024)")
    p_serve.add_argument("--deadline-s", type=float, default=None,
                         help="per-cell deadline (process backend): a "
                              "hung query is quarantined and answered "
                              "with HTTP 503")
    p_serve.add_argument("--max-attempts", type=int, default=None,
                         help="retries before a failing cell is "
                              "quarantined (default 3)")
    p_serve.add_argument("--import", dest="imports", action="append",
                         metavar="MODULE",
                         help="import MODULE first so its "
                              "@register_workload workloads are servable "
                              "(repeatable)")
    p_serve.set_defaults(fn=cmd_serve)

    p_top = sub.add_parser(
        "top",
        help="one-line status table over every *.status.json in a "
             "directory",
    )
    p_top.add_argument("--dir", default=".",
                       help="directory to scan (non-recursive)")
    p_top.add_argument("--watch", action="store_true",
                       help="re-render until every sweep finishes")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="refresh interval for --watch (seconds)")
    p_top.set_defaults(fn=cmd_top)

    p_merge = sub.add_parser(
        "merge-stores",
        help="merge N complete shard sweep stores into the one-shot store",
    )
    p_merge.add_argument("stores", nargs="+", metavar="STORE",
                         help="the shard JSONL stores (all N of them)")
    p_merge.add_argument("--out", required=True,
                         help="merged store path (byte-identical to an "
                              "unsharded sweep of the same grid)")
    p_merge.add_argument("--allow-partial", action="store_true",
                         help="tolerate missing shards/cells: merge what "
                              "exists into a resumable checkpoint store and "
                              "write an explicit holes manifest (exit 3)")
    p_merge.add_argument("--holes", default=None, metavar="PATH",
                         help="holes manifest path for --allow-partial "
                              "(default: <out>.holes.json)")
    p_merge.set_defaults(fn=cmd_merge_stores)

    p_repair = sub.add_parser(
        "repair-store",
        help="salvage a corrupt sweep store (keep verifiable rows, drop "
             "the rest, list the cells to re-run)",
    )
    p_repair.add_argument("store", help="the damaged JSONL store")
    p_repair.add_argument("--out", default=None,
                          help="write the repaired store here instead of "
                               "repairing in place")
    p_repair.set_defaults(fn=cmd_repair_store)

    p_ingest = sub.add_parser(
        "ingest",
        help="load JSONL sweep stores into the sqlite results warehouse "
             "(idempotent; docs/warehouse.md)",
    )
    p_ingest.add_argument("stores", nargs="+", metavar="STORE",
                          help="finalized sweep stores (a *.verdict.json "
                               "sidecar next to a store is ingested too)")
    p_ingest.add_argument("--db", default="warehouse.sqlite",
                          help="warehouse sqlite file (default: "
                               "warehouse.sqlite; created on first use)")
    p_ingest.add_argument("--allow-partial", action="store_true",
                          help="ingest incomplete stores (missing cells "
                               "become lineage holes; exit 3)")
    p_ingest.set_defaults(fn=cmd_ingest)

    p_query = sub.add_parser(
        "query",
        help="cross-sweep aggregations over the warehouse (or raw "
             "stores) — byte-identical either way",
    )
    p_query.add_argument("--db", default=None, metavar="PATH",
                         help="warehouse sqlite file (default: "
                              "warehouse.sqlite unless --store is given)")
    p_query.add_argument("--store", action="append", metavar="STORE",
                         help="answer from raw JSONL store(s) instead of "
                              "the warehouse (repeatable; the byte-identity "
                              "reference path)")
    p_query.add_argument("--metric", default=None, metavar="NAME",
                         help="numeric result field to aggregate "
                              "(dominators, rounds, clusters, messages, "
                              "words, ...)")
    p_query.add_argument("--where", action="append", metavar="FIELD=V[,V]",
                         help="equality filter on workload/spec/family/"
                              "seed/k (repeatable; comma = any-of)")
    p_query.add_argument("--group-by", default=None, metavar="F1[,F2]",
                         help="group fields, e.g. family,k")
    p_query.add_argument("--agg", default=None, metavar="A1[,A2]",
                         help="aggregations: count,min,max,sum,mean,pNN "
                              "(default: count,min,max,mean,p50,p90)")
    p_query.add_argument("--bench", action="store_true",
                         help="query perf-history samples (fields "
                              "workload/mode, metric best_seconds) from "
                              "--db or --history")
    p_query.add_argument("--history", default=None, metavar="PATH",
                         help="BENCH history file for --bench without a "
                              "warehouse (default: BENCH_history.jsonl)")
    p_query.add_argument("--json", action="store_true",
                         help="print the repro-query/1 document instead "
                              "of the ASCII table")
    p_query.set_defaults(fn=cmd_query)

    p_portfolio = sub.add_parser(
        "portfolio",
        help="best-of-N run: fan seeds over the pool, reduce to the "
             "best attempt (deterministic verdict)",
    )
    p_portfolio.add_argument("--workload", default="kdom", metavar="NAME",
                             help="registered workload name (default kdom)")
    p_portfolio.add_argument("--spec", required=True, metavar="SPEC",
                             help="graph spec, e.g. random:n=64,p=0.1")
    p_portfolio.add_argument("--seeds", default="0,1,2,3",
                             help="comma list of attempt seeds")
    p_portfolio.add_argument("--k", type=int, default=2)
    p_portfolio.add_argument("--reduce", default="smallest",
                             choices=("smallest", "rounds", "messages"),
                             help="which attempt wins (all minimize)")
    p_portfolio.add_argument("--out", default=None,
                             help="attempt store path; the verdict lands "
                                  "in <out>.verdict.json beside it")
    p_portfolio.add_argument("--backend", choices=("inline", "process"),
                             default="process",
                             help="where attempts execute (default: "
                                  "process)")
    p_portfolio.add_argument("--workers", type=int, default=None,
                             help="process-pool size (default: CPU count)")
    p_portfolio.add_argument("--no-resume", action="store_true",
                             help="overwrite an existing attempt store")
    p_portfolio.add_argument("--deadline-s", type=float, default=None,
                             help="per-attempt deadline (process backend)")
    p_portfolio.add_argument("--max-attempts", type=int, default=None,
                             help="retries before an attempt is "
                                  "quarantined (default 3)")
    p_portfolio.add_argument("--json", action="store_true",
                             help="print the repro-portfolio/1 verdict "
                                  "document")
    p_portfolio.add_argument("-v", "--verbose", action="store_true",
                             help="print one line per finished attempt")
    p_portfolio.set_defaults(fn=cmd_portfolio)

    p_chaos = sub.add_parser(
        "chaos",
        help="chaos drill: sweep under a seeded fault plan, repair, "
             "resume, verify vs the fault-free baseline",
    )
    p_chaos.add_argument("--workload", default="kdom", metavar="NAME",
                         help="registered workload name (default kdom)")
    p_chaos.add_argument("--spec", action="append", metavar="SPEC",
                         help="graph spec, e.g. tree:n=64 (repeatable)")
    p_chaos.add_argument("--seeds", default="0",
                         help="comma list of grid seeds")
    p_chaos.add_argument("--ks", default="2",
                         help="comma list of k values")
    p_chaos.add_argument("--fast", action="store_true",
                         help="built-in CI-sized 8-cell grid")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="chaos-plan seed (same seed, same faults, "
                              "same verdict)")
    p_chaos.add_argument("--out-dir", default="chaos-drill",
                         help="directory for the baseline and chaos stores")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="worker processes for the chaos sweep")
    p_chaos.add_argument("--deadline-s", type=float, default=5.0,
                         help="watchdog deadline for hung workers (s)")
    p_chaos.add_argument("--max-attempts", type=int, default=3,
                         help="retries before quarantine")
    p_chaos.add_argument("--kills", type=int, default=1,
                         help="worker kills to schedule")
    p_chaos.add_argument("--hangs", type=int, default=1,
                         help="worker hangs to schedule")
    p_chaos.add_argument("--slows", type=int, default=0,
                         help="slow tasks to schedule (below the deadline)")
    p_chaos.add_argument("--corrupts", type=int, default=1,
                         help="store-row corruptions to schedule")
    p_chaos.add_argument("--poisons", type=int, default=0,
                         help="poison tasks (kill on every attempt -> "
                              "quarantine; exit 3)")
    p_chaos.add_argument("-v", "--verbose", action="store_true",
                         help="print phase-by-phase progress")
    p_chaos.set_defaults(fn=cmd_chaos)

    p_perf = sub.add_parser(
        "perf", help="engine perf smoke suite (writes BENCH_sim.json)"
    )
    p_perf.add_argument("--fast", action="store_true",
                        help="CI-sized workloads")
    p_perf.add_argument("--reps", type=int, default=3,
                        help="repetitions per workload (best is reported)")
    p_perf.add_argument("--output", default=None,
                        help="report path (default: BENCH_sim.json)")
    p_perf.add_argument("--baseline", default=None,
                        help="baseline JSON for the regression gate "
                             "(default: benchmarks/perf_baseline.json)")
    p_perf.add_argument("--gate-factor", type=float, default=None,
                        help="fail when a workload exceeds this multiple "
                             "of its baseline best (default 2.0)")
    p_perf.add_argument("--no-gate", action="store_true",
                        help="skip the baseline comparison")
    p_perf.add_argument("--profile", action="store_true",
                        help="cProfile the workloads instead of timing them")
    p_perf.add_argument("--obs", action="store_true",
                        help="also measure observability overhead "
                             "(no-subscriber gate at 5%% over baseline)")
    p_perf.add_argument("--workload", action="append", default=None,
                        metavar="NAME",
                        help="run only this workload (repeatable); the "
                             "spec-dispatch and dense-speedup sections "
                             "are skipped when filtering")
    p_perf.add_argument("--compare", default=None, metavar="OLD.json",
                        help="after the run, print a per-workload "
                             "speedup table against a previous report")
    p_perf.add_argument("--telemetry", action="store_true",
                        help="also measure sweep telemetry overhead and "
                             "gate the telemetry-off configuration at "
                             "5%% over baseline")
    p_perf.add_argument("--no-history", action="store_true",
                        help="skip appending this run to the BENCH "
                             "history (BENCH_history.jsonl)")
    p_perf.set_defaults(fn=cmd_perf)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
