"""Structural validity checks used across the library and its tests."""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from .distances import connected_components
from .graph import Graph


def is_connected(graph: Graph) -> bool:
    if graph.num_nodes == 0:
        return True
    return len(connected_components(graph)) == 1


def is_tree(graph: Graph) -> bool:
    """Connected and |E| = |V| - 1."""
    if graph.num_nodes == 0:
        return True
    return is_connected(graph) and graph.num_edges == graph.num_nodes - 1


def is_forest(graph: Graph) -> bool:
    """Acyclic: every component has |E| = |V| - 1."""
    components = connected_components(graph)
    for component in components:
        members = set(component)
        edges = sum(
            1
            for u in component
            for v in graph.neighbors(u)
            if v in members
        ) // 2
        if edges != len(component) - 1:
            return False
    return True


def has_unique_weights(graph: Graph) -> bool:
    weights = [w for _u, _v, w in graph.weighted_edges()]
    if any(w is None for w in weights):
        return False
    return len(set(weights)) == len(weights)


def edges_form_spanning_tree(graph: Graph, edge_list: Iterable[Tuple[Any, Any]]) -> bool:
    """Do ``edge_list`` (edges of ``graph``) span all nodes acyclically?"""
    edge_list = list(edge_list)
    for u, v in edge_list:
        if not graph.has_edge(u, v):
            return False
    sub = graph.edge_subgraph(edge_list)
    return is_tree(sub)
