"""Rooted-tree views.

Most algorithms in the paper operate on a tree with a distinguished root
(the BFS tree of Procedure ``Initialize``, MST fragments, the clusters'
spanning trees).  :class:`RootedTree` is the sequential-side view of such
a tree: parent/children maps, depths, and traversal orders.  It is used
by verifiers and by the sequential reference constructions — the
distributed algorithms themselves learn this structure through messages.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .graph import Graph
from .validation import is_tree


class RootedTree:
    """A tree with a root, parent pointers and per-node depths."""

    def __init__(self, parent: Dict[Any, Optional[Any]], root: Any):
        if parent.get(root, "missing") is not None:
            raise ValueError("root must map to parent None")
        self.root = root
        self.parent: Dict[Any, Optional[Any]] = dict(parent)
        self.children: Dict[Any, List[Any]] = {v: [] for v in parent}
        for v, p in parent.items():
            if p is not None:
                if p not in self.children:
                    raise ValueError(f"parent {p} of {v} is not a tree node")
                self.children[p].append(v)
        for kids in self.children.values():
            kids.sort(key=str)
        self.depth: Dict[Any, int] = {}
        self._compute_depths()

    def _compute_depths(self) -> None:
        self.depth[self.root] = 0
        queue = deque([self.root])
        visited = 1
        while queue:
            v = queue.popleft()
            for c in self.children[v]:
                self.depth[c] = self.depth[v] + 1
                queue.append(c)
                visited += 1
        if visited != len(self.parent):
            raise ValueError("parent map is not a single tree rooted at root")

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph, root: Any) -> "RootedTree":
        """Root an (unrooted) tree graph at ``root`` via BFS."""
        if not is_tree(graph):
            raise ValueError("graph is not a tree")
        from .distances import bfs_tree

        _dist, parent = bfs_tree(graph, root)
        return cls(parent, root)

    # -- inspection ---------------------------------------------------------
    @property
    def nodes(self) -> List[Any]:
        return list(self.parent)

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    @property
    def height(self) -> int:
        """Depth of the deepest node (the paper's tree depth ``M``)."""
        return max(self.depth.values())

    def is_leaf(self, v: Any) -> bool:
        return not self.children[v]

    def leaves(self) -> List[Any]:
        return [v for v in self.parent if self.is_leaf(v)]

    def nodes_at_depth(self, d: int) -> List[Any]:
        return [v for v, depth in self.depth.items() if depth == d]

    def subtree_nodes(self, v: Any) -> List[Any]:
        """All nodes in the subtree rooted at ``v`` (including ``v``)."""
        out = []
        stack = [v]
        while stack:
            w = stack.pop()
            out.append(w)
            stack.extend(self.children[w])
        return out

    def path_to_root(self, v: Any) -> List[Any]:
        path = [v]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def bfs_order(self) -> Iterator[Any]:
        queue = deque([self.root])
        while queue:
            v = queue.popleft()
            yield v
            queue.extend(self.children[v])

    def postorder(self) -> Iterator[Any]:
        """Children before parents (for bottom-up computations)."""
        order: List[Any] = []
        stack = [self.root]
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(self.children[v])
        return reversed(order)

    def edges(self) -> Iterator[Tuple[Any, Any]]:
        for v, p in self.parent.items():
            if p is not None:
                yield (p, v)

    def as_graph(self, weights: Optional[Dict[Tuple[Any, Any], float]] = None) -> Graph:
        graph = Graph()
        for v in self.parent:
            graph.add_node(v)
        for p, v in self.edges():
            w = None
            if weights is not None:
                w = weights.get((p, v), weights.get((v, p)))
            graph.add_edge(p, v, w)
        return graph
