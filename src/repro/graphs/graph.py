"""Undirected weighted graphs.

A deliberately small, dependency-free graph type: adjacency maps with
per-edge weights.  The paper assumes distinct edge weights, polynomial
in ``n`` (so a weight fits in one ``O(log n)``-bit word); see
:mod:`repro.graphs.weights` for the assignment helpers that enforce
this.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple


@dataclass(frozen=True)
class GraphProvenance:
    """How a graph can be rebuilt from scratch: the recipe, not the data.

    The process-execution layer (:mod:`repro.batch.dispatch`) ships this
    tiny record to worker processes instead of pickling whole adjacency
    structures; the worker regenerates the graph through its
    :class:`~repro.batch.cache.GraphCache`.  The contract: replaying

    1. ``parse_graph_spec(spec, seed=seed)``,
    2. ``assign_unique_weights(seed=weight_seed)`` if ``weight_seed``
       is not ``None``, and
    3. ``.subgraph(members)`` if ``members`` is not ``None``

    yields a graph with exactly the same nodes, edges and weights.
    Generators stamp provenance at construction time; any later
    structural or weight mutation clears it (the recipe would lie).
    """

    spec: str
    seed: int
    weight_seed: Optional[int] = None
    members: Optional[Tuple[Any, ...]] = None

    def restricted_to(self, nodes: Iterable[Any]) -> "GraphProvenance":
        """Provenance of the induced subgraph on ``nodes``.

        Members are always node ids of the *base* generated graph, so
        restricting an already-restricted provenance stays valid: the
        new member set is a subset of the old one.
        """
        return replace(self, members=tuple(sorted(nodes, key=str)))


class Graph:
    """An undirected graph with optional edge weights.

    Nodes may be any hashable, but the generators in this package use
    consecutive integers.  Self-loops and parallel edges are rejected —
    the paper's model is a simple graph.
    """

    def __init__(self) -> None:
        self._adj: Dict[Any, Dict[Any, Optional[float]]] = {}
        #: Rebuild recipe (:class:`GraphProvenance`) stamped by the
        #: seeded generators; ``None`` for hand-built or mutated graphs.
        self.provenance: Optional[GraphProvenance] = None

    # -- construction -----------------------------------------------------
    def add_node(self, v: Any) -> None:
        if v not in self._adj:
            self._adj[v] = {}
            self.provenance = None

    def add_edge(self, u: Any, v: Any, weight: Optional[float] = None) -> None:
        if u == v:
            raise ValueError(f"self-loop at {u} rejected (simple graph)")
        self.add_node(u)
        self.add_node(v)
        if v in self._adj[u] and self._adj[u][v] != weight:
            raise ValueError(
                f"edge ({u}, {v}) already present with a different weight"
            )
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self.provenance = None

    def set_weight(self, u: Any, v: Any, weight: float) -> None:
        if v not in self._adj.get(u, {}):
            raise KeyError(f"no edge ({u}, {v})")
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self.provenance = None

    def remove_edge(self, u: Any, v: Any) -> None:
        if v not in self._adj.get(u, {}):
            raise KeyError(f"no edge ({u}, {v})")
        del self._adj[u][v]
        del self._adj[v][u]
        self.provenance = None

    # -- inspection ---------------------------------------------------------
    @property
    def nodes(self) -> List[Any]:
        return list(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __contains__(self, v: Any) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def neighbors(self, v: Any) -> List[Any]:
        return list(self._adj[v])

    def degree(self, v: Any) -> int:
        return len(self._adj[v])

    def has_edge(self, u: Any, v: Any) -> bool:
        return v in self._adj.get(u, {})

    def weight(self, u: Any, v: Any) -> Optional[float]:
        return self._adj[u][v]

    def edges(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate each undirected edge once, endpoints sorted."""
        for u in self._adj:
            for v in self._adj[u]:
                if _ordered(u, v):
                    yield (u, v)

    def weighted_edges(self) -> Iterator[Tuple[Any, Any, Optional[float]]]:
        for u, v in self.edges():
            yield (u, v, self._adj[u][v])

    def total_weight(self) -> float:
        return sum(w for _u, _v, w in self.weighted_edges() if w is not None)

    # -- derived graphs ------------------------------------------------------
    def copy(self) -> "Graph":
        clone = Graph()
        for v in self._adj:
            clone.add_node(v)
        for u, v, w in self.weighted_edges():
            clone.add_edge(u, v, w)
        clone.provenance = self.provenance
        return clone

    def subgraph(self, nodes: Iterable[Any]) -> "Graph":
        """The induced subgraph on ``nodes`` (weights preserved).

        When this graph carries provenance, the subgraph does too —
        restricted to ``nodes`` — so induced cluster sub-networks stay
        spec-dispatchable (:mod:`repro.batch.dispatch`).
        """
        keep: Set[Any] = set(nodes)
        sub = Graph()
        for v in keep:
            if v not in self._adj:
                raise KeyError(f"node {v} not in graph")
            sub.add_node(v)
        for u, v, w in self.weighted_edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w)
        if self.provenance is not None:
            sub.provenance = self.provenance.restricted_to(keep)
        return sub

    def edge_subgraph(self, edge_list: Iterable[Tuple[Any, Any]]) -> "Graph":
        """Graph on the same node set containing only ``edge_list``."""
        sub = Graph()
        for v in self._adj:
            sub.add_node(v)
        for u, v in edge_list:
            sub.add_edge(u, v, self._adj[u][v])
        return sub

    def relabeled(self, mapping: Dict[Any, Any]) -> "Graph":
        """A copy with nodes renamed by ``mapping`` (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("relabeling must be injective")
        out = Graph()
        for v in self._adj:
            out.add_node(mapping[v])
        for u, v, w in self.weighted_edges():
            out.add_edge(mapping[u], mapping[v], w)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"


def _ordered(u: Any, v: Any) -> bool:
    """A stable 'u < v' that tolerates mixed node types."""
    try:
        return u < v
    except TypeError:
        return str(u) < str(v)
