"""Undirected weighted graphs.

A deliberately small, dependency-free graph type: adjacency maps with
per-edge weights.  The paper assumes distinct edge weights, polynomial
in ``n`` (so a weight fits in one ``O(log n)``-bit word); see
:mod:`repro.graphs.weights` for the assignment helpers that enforce
this.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple


class Graph:
    """An undirected graph with optional edge weights.

    Nodes may be any hashable, but the generators in this package use
    consecutive integers.  Self-loops and parallel edges are rejected —
    the paper's model is a simple graph.
    """

    def __init__(self) -> None:
        self._adj: Dict[Any, Dict[Any, Optional[float]]] = {}

    # -- construction -----------------------------------------------------
    def add_node(self, v: Any) -> None:
        if v not in self._adj:
            self._adj[v] = {}

    def add_edge(self, u: Any, v: Any, weight: Optional[float] = None) -> None:
        if u == v:
            raise ValueError(f"self-loop at {u} rejected (simple graph)")
        self.add_node(u)
        self.add_node(v)
        if v in self._adj[u] and self._adj[u][v] != weight:
            raise ValueError(
                f"edge ({u}, {v}) already present with a different weight"
            )
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def set_weight(self, u: Any, v: Any, weight: float) -> None:
        if v not in self._adj.get(u, {}):
            raise KeyError(f"no edge ({u}, {v})")
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def remove_edge(self, u: Any, v: Any) -> None:
        if v not in self._adj.get(u, {}):
            raise KeyError(f"no edge ({u}, {v})")
        del self._adj[u][v]
        del self._adj[v][u]

    # -- inspection ---------------------------------------------------------
    @property
    def nodes(self) -> List[Any]:
        return list(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __contains__(self, v: Any) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def neighbors(self, v: Any) -> List[Any]:
        return list(self._adj[v])

    def degree(self, v: Any) -> int:
        return len(self._adj[v])

    def has_edge(self, u: Any, v: Any) -> bool:
        return v in self._adj.get(u, {})

    def weight(self, u: Any, v: Any) -> Optional[float]:
        return self._adj[u][v]

    def edges(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate each undirected edge once, endpoints sorted."""
        for u in self._adj:
            for v in self._adj[u]:
                if _ordered(u, v):
                    yield (u, v)

    def weighted_edges(self) -> Iterator[Tuple[Any, Any, Optional[float]]]:
        for u, v in self.edges():
            yield (u, v, self._adj[u][v])

    def total_weight(self) -> float:
        return sum(w for _u, _v, w in self.weighted_edges() if w is not None)

    # -- derived graphs ------------------------------------------------------
    def copy(self) -> "Graph":
        clone = Graph()
        for v in self._adj:
            clone.add_node(v)
        for u, v, w in self.weighted_edges():
            clone.add_edge(u, v, w)
        return clone

    def subgraph(self, nodes: Iterable[Any]) -> "Graph":
        """The induced subgraph on ``nodes`` (weights preserved)."""
        keep: Set[Any] = set(nodes)
        sub = Graph()
        for v in keep:
            if v not in self._adj:
                raise KeyError(f"node {v} not in graph")
            sub.add_node(v)
        for u, v, w in self.weighted_edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w)
        return sub

    def edge_subgraph(self, edge_list: Iterable[Tuple[Any, Any]]) -> "Graph":
        """Graph on the same node set containing only ``edge_list``."""
        sub = Graph()
        for v in self._adj:
            sub.add_node(v)
        for u, v in edge_list:
            sub.add_edge(u, v, self._adj[u][v])
        return sub

    def relabeled(self, mapping: Dict[Any, Any]) -> "Graph":
        """A copy with nodes renamed by ``mapping`` (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("relabeling must be injective")
        out = Graph()
        for v in self._adj:
            out.add_node(mapping[v])
        for u, v, w in self.weighted_edges():
            out.add_edge(mapping[u], mapping[v], w)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"


def _ordered(u: Any, v: Any) -> bool:
    """A stable 'u < v' that tolerates mixed node types."""
    try:
        return u < v
    except TypeError:
        return str(u) < str(v)
