"""Cluster and partition structures.

The paper's output objects: a dominating set ``D`` and an associated
partition ``P`` assigning every node a dominator/centre.  A
:class:`Cluster` is one block (centre + members); a :class:`Partition`
is the full collection with the disjoint-cover invariant enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Set

from .distances import radius_within
from .graph import Graph


@dataclass
class Cluster:
    """One block of a partition: a centre and its member set."""

    center: Any
    members: Set[Any] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.members = set(self.members)
        self.members.add(self.center)

    @property
    def size(self) -> int:
        return len(self.members)

    def radius_in(self, graph: Graph) -> int:
        """Radius around the centre inside the induced subgraph."""
        return radius_within(graph, self.members, self.center)

    def __contains__(self, v: Any) -> bool:
        return v in self.members

    @classmethod
    def _owning(cls, center: Any, members: Set[Any]) -> "Cluster":
        """Internal: adopt ``members`` without the defensive copy.  The
        caller guarantees the set is freshly built, unaliased, and
        already contains ``center`` — million-node partitions spend
        real time in ``__post_init__`` otherwise."""
        cluster = object.__new__(cls)
        cluster.center = center
        cluster.members = members
        return cluster

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster(center={self.center}, size={self.size})"


class Partition:
    """A disjoint cover of a graph's nodes by centred clusters."""

    def __init__(self, clusters: Iterable[Cluster]):
        self.clusters: List[Cluster] = list(clusters)
        # dict.fromkeys bulk-inserts at C speed; disjointness is checked
        # by cardinality, with a python re-scan only on the error path.
        center_of: Dict[Any, Any] = {}
        total = 0
        for cluster in self.clusters:
            center_of.update(dict.fromkeys(cluster.members, cluster.center))
            total += len(cluster.members)
        if len(center_of) != total:
            seen: Set[Any] = set()
            for cluster in self.clusters:
                for v in cluster.members:
                    if v in seen:
                        raise ValueError(f"node {v} appears in two clusters")
                    seen.add(v)
        self.center_of = center_of

    @classmethod
    def from_center_map(cls, center_of: Dict[Any, Any]) -> "Partition":
        """Build from a node -> centre assignment (centres map to
        themselves or are added implicitly)."""
        members: Dict[Any, Set[Any]] = {}
        for v, center in center_of.items():
            members.setdefault(center, set()).add(v)
        for center in members:
            members[center].add(center)
        return cls(
            Cluster._owning(center, nodes)
            for center, nodes in members.items()
        )

    # -- inspection ---------------------------------------------------------
    @property
    def centers(self) -> List[Any]:
        return [cluster.center for cluster in self.clusters]

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def cluster_of(self, v: Any) -> Cluster:
        center = self.center_of[v]
        for cluster in self.clusters:
            if cluster.center == center:
                return cluster
        raise KeyError(v)  # pragma: no cover - unreachable by construction

    def covers(self, nodes: Iterable[Any]) -> bool:
        return set(nodes) == set(self.center_of)

    def min_cluster_size(self) -> int:
        return min((c.size for c in self.clusters), default=0)

    def max_radius_in(self, graph: Graph) -> int:
        """max over clusters of the radius inside the induced subgraph
        (the paper's Rad(P))."""
        return max((c.radius_in(graph) for c in self.clusters), default=0)

    def max_radius_in_graph(self, graph: Graph) -> int:
        """max over nodes of dist_G(v, centre(v)) — domination radius
        measured in the whole graph (weaker than :meth:`max_radius_in`)."""
        from .distances import bfs_distances

        worst = 0
        for cluster in self.clusters:
            dist = bfs_distances(graph, cluster.center)
            for v in cluster.members:
                worst = max(worst, dist[v])
        return worst

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Partition(clusters={self.num_clusters}, nodes={len(self.center_of)})"
