"""Textual graph specs: ``grid:12x12``, ``tree:n=64``, ``random:n=50,p=0.1``.

The CLI has always accepted compact generator specs; the sweep
subsystem (:mod:`repro.batch`) keys its graph cache and its result
rows by the same strings, so the parser lives here in the graph layer
where both can import it without touching the CLI.

Supported kinds: ``grid:RxC``, ``torus:RxC``, ``ring:N``, ``tree:N``,
``random:N:P`` (random connected with extra-edge probability P) and
``complete:N``.  Every kind also accepts key=value segments
(``tree:n=64``, ``grid:rows=3,cols=5``, ``random:n=50,p=0.1``).
"""

from __future__ import annotations

from typing import Dict, Optional

from .generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    random_connected_graph,
    random_tree,
    torus_graph,
)
from .graph import Graph

#: Graph kinds understood by :func:`parse_graph_spec`.
SPEC_KINDS = ("grid", "torus", "ring", "tree", "complete", "random")


class GraphSpecError(ValueError):
    """A graph spec string could not be parsed."""


def _spec_params(rest: str) -> Optional[Dict[str, str]]:
    """Parse ``n=64`` / ``n=50,p=0.1`` style spec arguments, or None
    when ``rest`` uses the positional form (``12x12``, ``200:0.05``)."""
    if "=" not in rest:
        return None
    params: Dict[str, str] = {}
    for part in rest.replace(":", ",").split(","):
        key, sep, value = part.partition("=")
        if not sep or not key or not value:
            raise ValueError(f"malformed key=value segment {part!r}")
        params[key.strip()] = value.strip()
    return params


def parse_graph_spec(spec: str, seed: int = 0) -> Graph:
    """Build a graph from a spec like ``grid:12x12`` or ``tree:n=64``.

    ``seed`` feeds the randomized generators (``tree``, ``random``);
    the same (spec, seed) pair always yields the same graph, which is
    the contract the sweep cache relies on.  Raises
    :class:`GraphSpecError` on malformed or unknown specs.
    """
    kind, _, rest = spec.partition(":")
    try:
        params = _spec_params(rest)
        if kind == "grid":
            rows, cols = (
                (params["rows"], params["cols"]) if params else rest.split("x")
            )
            return grid_graph(int(rows), int(cols))
        if kind == "torus":
            rows, cols = (
                (params["rows"], params["cols"]) if params else rest.split("x")
            )
            return torus_graph(int(rows), int(cols))
        if kind == "ring":
            return cycle_graph(int(params["n"] if params else rest))
        if kind == "tree":
            return random_tree(int(params["n"] if params else rest), seed=seed)
        if kind == "complete":
            return complete_graph(int(params["n"] if params else rest))
        if kind == "random":
            n, p = (params["n"], params["p"]) if params else rest.split(":")
            return random_connected_graph(int(n), float(p), seed=seed)
    except (KeyError, ValueError, TypeError) as exc:
        raise GraphSpecError(f"bad graph spec {spec!r}: {exc!r}") from exc
    raise GraphSpecError(
        f"unknown graph kind {kind!r} (one of {'/'.join(SPEC_KINDS)})"
    )
