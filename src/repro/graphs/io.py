"""Plain-text edge-list serialisation for graphs.

Format: one ``u v [weight]`` line per edge, ``#``-prefixed comments,
and ``node v`` lines for isolated nodes.  Round-trips exactly.
"""

from __future__ import annotations

from typing import Any, List, TextIO, Union

from .graph import Graph


def dump_edge_list(graph: Graph) -> str:
    lines: List[str] = [f"# nodes={graph.num_nodes} edges={graph.num_edges}"]
    connected = set()
    for u, v, w in sorted(graph.weighted_edges(), key=lambda t: (str(t[0]), str(t[1]))):
        connected.add(u)
        connected.add(v)
        if w is None:
            lines.append(f"{u} {v}")
        else:
            lines.append(f"{u} {v} {w}")
    for v in sorted(graph.nodes, key=str):
        if v not in connected:
            lines.append(f"node {v}")
    return "\n".join(lines) + "\n"


def load_edge_list(text: str) -> Graph:
    graph = Graph()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "node":
            if len(parts) != 2:
                raise ValueError(f"line {line_number}: malformed node line")
            graph.add_node(_parse_node(parts[1]))
            continue
        if len(parts) == 2:
            graph.add_edge(_parse_node(parts[0]), _parse_node(parts[1]))
        elif len(parts) == 3:
            graph.add_edge(
                _parse_node(parts[0]), _parse_node(parts[1]), _parse_weight(parts[2])
            )
        else:
            raise ValueError(f"line {line_number}: expected 'u v [w]'")
    return graph


def write_edge_list(graph: Graph, stream: TextIO) -> None:
    stream.write(dump_edge_list(graph))


def read_edge_list(stream: TextIO) -> Graph:
    return load_edge_list(stream.read())


def _parse_node(token: str) -> Any:
    try:
        return int(token)
    except ValueError:
        return token


def _parse_weight(token: str) -> Union[int, float]:
    try:
        return int(token)
    except ValueError:
        return float(token)
