"""Unweighted (hop-count) distance utilities.

The paper measures all diameters/radii "in the unweighted sense, i.e.,
in number of hops" (§1.2); these helpers implement exactly that via BFS.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Tuple

from .graph import Graph


def bfs_distances(graph: Graph, source: Any) -> Dict[Any, int]:
    """Hop distances from ``source`` to every reachable node."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def bfs_tree(graph: Graph, source: Any) -> Tuple[Dict[Any, int], Dict[Any, Any]]:
    """Distances and BFS-tree parents (parent of source is None).

    Ties between potential parents break toward the smallest neighbour,
    matching the deterministic tie-breaking the simulator uses.
    """
    dist = {source: 0}
    parent: Dict[Any, Any] = {source: None}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in sorted(graph.neighbors(v), key=str):
            if u not in dist:
                dist[u] = dist[v] + 1
                parent[u] = v
                queue.append(u)
    return dist, parent


def distance(graph: Graph, u: Any, v: Any) -> int:
    dist = bfs_distances(graph, u)
    if v not in dist:
        raise ValueError(f"{v} unreachable from {u}")
    return dist[v]


def eccentricity(graph: Graph, v: Any) -> int:
    dist = bfs_distances(graph, v)
    if len(dist) != graph.num_nodes:
        raise ValueError("graph is disconnected")
    return max(dist.values())


def diameter(graph: Graph) -> int:
    """Exact hop diameter (all-sources BFS; fine at laptop scale)."""
    if graph.num_nodes == 0:
        return 0
    return max(eccentricity(graph, v) for v in graph.nodes)


def radius_and_center(graph: Graph) -> Tuple[int, Any]:
    """The graph radius and one centre vertex attaining it."""
    if graph.num_nodes == 0:
        raise ValueError("empty graph has no centre")
    best_node = None
    best_ecc = None
    for v in sorted(graph.nodes, key=str):
        ecc = eccentricity(graph, v)
        if best_ecc is None or ecc < best_ecc:
            best_ecc, best_node = ecc, v
    return best_ecc, best_node


def radius(graph: Graph) -> int:
    return radius_and_center(graph)[0]


def radius_within(graph: Graph, members: Iterable[Any], center: Any) -> int:
    """Eccentricity of ``center`` in the subgraph induced by ``members``.

    Used to check cluster-radius claims (Rad measured *inside* the
    cluster, as in the paper's Definition 3.1 of spanning forests).
    """
    members = set(members)
    if center not in members:
        raise ValueError("center must be a member")
    dist = {center: 0}
    queue = deque([center])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u in members and u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    if set(dist) != members:
        raise ValueError("members do not induce a connected subgraph")
    return max(dist.values())


def connected_components(graph: Graph) -> List[List[Any]]:
    seen: Dict[Any, bool] = {}
    components: List[List[Any]] = []
    for start in graph.nodes:
        if start in seen:
            continue
        component = []
        queue = deque([start])
        seen[start] = True
        while queue:
            v = queue.popleft()
            component.append(v)
            for u in graph.neighbors(v):
                if u not in seen:
                    seen[u] = True
                    queue.append(u)
        components.append(component)
    return components


def shortest_path(graph: Graph, source: Any, target: Any) -> List[Any]:
    """One shortest (fewest-hops) path, inclusive of both endpoints."""
    _dist, parent = bfs_tree(graph, source)
    if target not in parent:
        raise ValueError(f"{target} unreachable from {source}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path
