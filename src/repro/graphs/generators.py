"""Deterministic, seeded graph and tree generators.

These supply the workloads for every experiment: tree families that
stress the k-dominating-set algorithms (paths = deep, stars = shallow,
caterpillars/brooms = mixed), and graph families for the MST experiments
(grids and tori = low diameter relative to n, random connected graphs =
dense fragment graphs, lollipops = pathological diameter).
"""

from __future__ import annotations

import random
from typing import Sequence

from .graph import Graph, GraphProvenance


def path_graph(n: int) -> Graph:
    """0 - 1 - 2 - ... - (n-1)."""
    _require_positive(n)
    g = Graph()
    g.add_node(0)
    for v in range(1, n):
        g.add_edge(v - 1, v)
    return g


def cycle_graph(n: int) -> Graph:
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    g.provenance = GraphProvenance(f"ring:n={n}", 0)
    return g


def star_graph(n: int) -> Graph:
    """Centre 0 joined to leaves 1..n-1."""
    _require_positive(n)
    g = Graph()
    g.add_node(0)
    for v in range(1, n):
        g.add_edge(0, v)
    return g


def complete_graph(n: int) -> Graph:
    _require_positive(n)
    g = Graph()
    for v in range(n):
        g.add_node(v)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    g.provenance = GraphProvenance(f"complete:n={n}", 0)
    return g


def balanced_tree(branching: int, height: int) -> Graph:
    """Complete ``branching``-ary tree of the given height, rooted at 0."""
    if branching < 1 or height < 0:
        raise ValueError("branching >= 1 and height >= 0 required")
    g = Graph()
    g.add_node(0)
    frontier = [0]
    next_id = 1
    for _level in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                g.add_edge(parent, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return g


def caterpillar_tree(spine: int, legs_per_node: int) -> Graph:
    """A path of ``spine`` nodes, each with ``legs_per_node`` leaves."""
    _require_positive(spine)
    g = path_graph(spine)
    next_id = spine
    for v in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(v, next_id)
            next_id += 1
    return g


def broom_tree(handle: int, bristles: int) -> Graph:
    """A path of ``handle`` nodes with ``bristles`` leaves at the far end."""
    _require_positive(handle)
    g = path_graph(handle)
    next_id = handle
    for _ in range(bristles):
        g.add_edge(handle - 1, next_id)
        next_id += 1
    return g


def spider_tree(legs: int, leg_length: int) -> Graph:
    """``legs`` paths of ``leg_length`` nodes glued at a centre (node 0)."""
    if legs < 1 or leg_length < 1:
        raise ValueError("legs >= 1 and leg_length >= 1 required")
    g = Graph()
    g.add_node(0)
    next_id = 1
    for _ in range(legs):
        previous = 0
        for _ in range(leg_length):
            g.add_edge(previous, next_id)
            previous = next_id
            next_id += 1
    return g


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform random labelled tree via a random Prüfer sequence."""
    _require_positive(n)
    if n == 1:
        g = Graph()
        g.add_node(0)
    elif n == 2:
        g = Graph()
        g.add_edge(0, 1)
    else:
        rng = random.Random(seed)
        pruefer = [rng.randrange(n) for _ in range(n - 2)]
        g = tree_from_pruefer(pruefer)
    g.provenance = GraphProvenance(f"tree:n={n}", seed)
    return g


def tree_from_pruefer(pruefer: Sequence[int]) -> Graph:
    """Decode a Prüfer sequence over nodes 0..n-1 (n = len + 2)."""
    n = len(pruefer) + 2
    degree = [1] * n
    for v in pruefer:
        if not 0 <= v < n:
            raise ValueError("Prüfer entry out of range")
        degree[v] += 1
    g = Graph()
    for v in range(n):
        g.add_node(v)
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in pruefer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols grid; node (r, c) is numbered r * cols + c."""
    if rows < 1 or cols < 1:
        raise ValueError("rows, cols >= 1 required")
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_node(v)
            if c > 0:
                g.add_edge(v - 1, v)
            if r > 0:
                g.add_edge(v - cols, v)
    g.provenance = GraphProvenance(f"grid:rows={rows},cols={cols}", 0)
    return g


def torus_graph(rows: int, cols: int) -> Graph:
    """Grid with wraparound in both dimensions (diameter ~ (r+c)/2)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows, cols >= 3")
    g = grid_graph(rows, cols)
    for r in range(rows):
        g.add_edge(r * cols, r * cols + cols - 1)
    for c in range(cols):
        g.add_edge(c, (rows - 1) * cols + c)
    g.provenance = GraphProvenance(f"torus:rows={rows},cols={cols}", 0)
    return g


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """A clique with a path attached: large n, large diameter."""
    if clique_size < 3:
        raise ValueError("clique_size >= 3 required")
    g = complete_graph(clique_size)
    previous = clique_size - 1
    next_id = clique_size
    for _ in range(path_length):
        g.add_edge(previous, next_id)
        previous = next_id
        next_id += 1
    return g


def random_connected_graph(n: int, extra_edge_prob: float, seed: int = 0) -> Graph:
    """A random tree plus each non-tree edge independently with the given
    probability — connected by construction."""
    _require_positive(n)
    if not 0.0 <= extra_edge_prob <= 1.0:
        raise ValueError("probability must lie in [0, 1]")
    rng = random.Random(seed)
    g = random_tree(n, seed=rng.randrange(2**30))
    for u in range(n):
        for v in range(u + 1, n):
            if not g.has_edge(u, v) and rng.random() < extra_edge_prob:
                g.add_edge(u, v)
    g.provenance = GraphProvenance(f"random:n={n},p={extra_edge_prob!r}", seed)
    return g


def random_graph_with_m_edges(n: int, m: int, seed: int = 0) -> Graph:
    """A connected graph with exactly ``m`` edges (m >= n - 1)."""
    _require_positive(n)
    max_edges = n * (n - 1) // 2
    if not n - 1 <= m <= max_edges:
        raise ValueError(f"m must lie in [{n - 1}, {max_edges}]")
    rng = random.Random(seed)
    g = random_tree(n, seed=rng.randrange(2**30))
    candidates = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not g.has_edge(u, v)
    ]
    rng.shuffle(candidates)
    for u, v in candidates[: m - (n - 1)]:
        g.add_edge(u, v)
    return g


def random_regular_graph(n: int, degree: int, seed: int = 0) -> Graph:
    """A simple connected ``degree``-regular graph (pairing model with
    rejection).  Classic low-diameter (expander-like) workload for the
    MST experiments: diameter O(log n) at constant degree.

    Requires ``n * degree`` even and ``degree >= 3`` (for connectivity
    with high probability; we reject and retry until both simplicity
    and connectivity hold).
    """
    if degree < 3 or degree >= n:
        raise ValueError("3 <= degree < n required")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even")
    rng = random.Random(seed)
    from .validation import is_connected

    for _attempt in range(1000):
        stubs = [v for v in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if not ok:
            continue
        g = Graph()
        for v in range(n):
            g.add_node(v)
        for u, v in edges:
            g.add_edge(u, v)
        if is_connected(g):
            return g
    raise RuntimeError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes"
    )


def _require_positive(n: int) -> None:
    if n < 1:
        raise ValueError("n >= 1 required")


#: Named tree families used by parameterised tests and benchmarks.
TREE_FAMILIES = {
    "path": lambda n, seed=0: path_graph(n),
    "star": lambda n, seed=0: star_graph(n),
    "random": lambda n, seed=0: random_tree(n, seed=seed),
    "caterpillar": lambda n, seed=0: caterpillar_tree(max(1, n // 4), 3),
    "broom": lambda n, seed=0: broom_tree(max(1, n // 2), n - max(1, n // 2)),
    "binary": lambda n, seed=0: balanced_tree(2, max(1, (n).bit_length() - 1)),
}

#: Named graph families used by the MST experiments.
GRAPH_FAMILIES = {
    "grid": lambda n, seed=0: grid_graph(_near_square(n), _near_square(n)),
    "torus": lambda n, seed=0: torus_graph(
        max(3, _near_square(n)), max(3, _near_square(n))
    ),
    "sparse-random": lambda n, seed=0: random_connected_graph(n, 4.0 / n, seed=seed),
    "dense-random": lambda n, seed=0: random_connected_graph(n, 0.2, seed=seed),
    "ring": lambda n, seed=0: cycle_graph(max(3, n)),
}


def _near_square(n: int) -> int:
    side = max(2, round(n ** 0.5))
    return side
