"""Edge-weight assignment.

The paper assumes "each edge e in E is associated with a distinct
weight w(e), known to the adjacent nodes" and that weights are
"polynomial in n, so an edge weight can be sent in a single message"
(§1.2).  These helpers enforce both: weights are distinct integers
bounded by ``n ** 3`` by default.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional

from .graph import Graph


def assign_unique_weights(
    graph: Graph,
    seed: int = 0,
    max_weight: Optional[int] = None,
) -> Graph:
    """Assign distinct integer weights to every edge, in place.

    Weights are a random injection into ``[1, max_weight]`` where
    ``max_weight`` defaults to ``max(n, 2) ** 3`` — polynomial in ``n``
    as the model requires.  Returns the graph for chaining.
    """
    m = graph.num_edges
    n = graph.num_nodes
    # The default assignment is replayable from (provenance, seed), so
    # re-stamp provenance with the weight seed.  Two cases invalidate
    # instead: a custom max_weight (not recorded in the recipe), and a
    # members-restricted provenance (the replay order is parse ->
    # assign -> subgraph, so weighting a subgraph directly would draw a
    # different sample than weighting the base graph).
    provenance = graph.provenance
    if max_weight is not None or (
        provenance is not None and provenance.members is not None
    ):
        provenance = None
    if max_weight is None:
        max_weight = max(n, 2) ** 3
    if max_weight < m:
        raise ValueError(
            f"cannot give {m} edges distinct weights bounded by {max_weight}"
        )
    rng = random.Random(seed)
    weights = rng.sample(range(1, max_weight + 1), m)
    for (u, v), w in zip(sorted(graph.edges(), key=str), weights):
        graph.set_weight(u, v, w)
    if provenance is not None:
        graph.provenance = replace(provenance, weight_seed=seed)
    return graph


def assign_weights_by_rank(graph: Graph, seed: int = 0) -> Graph:
    """Assign the weights 1..m in a seeded random order, in place.

    Useful when tests want the MST to be determined purely by a random
    permutation (every weight profile with the same ranks has the same
    MST).
    """
    rng = random.Random(seed)
    edges = sorted(graph.edges(), key=str)
    rng.shuffle(edges)
    for rank, (u, v) in enumerate(edges, start=1):
        graph.set_weight(u, v, rank)
    return graph


def weights_are_polynomial(graph: Graph, degree: int = 3) -> bool:
    """Check the model assumption w(e) = O(n ** degree)."""
    bound = max(graph.num_nodes, 2) ** degree
    return all(
        w is not None and 0 < w <= bound for _u, _v, w in graph.weighted_edges()
    )


def perturb_to_unique(graph: Graph) -> Graph:
    """Make duplicate weights distinct by lexicographic tie-breaking.

    Standard trick (also usable instead of the paper's distinct-weight
    assumption): extend weight ``w`` of edge ``(u, v)`` to the triple
    ``(w, u, v)``.  We encode the triple back into a single integer
    ranking so the rest of the library keeps working with scalars.
    """
    ranked = sorted(
        graph.weighted_edges(), key=lambda t: (t[2], str(t[0]), str(t[1]))
    )
    for rank, (u, v, _w) in enumerate(ranked, start=1):
        graph.set_weight(u, v, rank)
    return graph
