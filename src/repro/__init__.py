"""repro — a reproduction of Kutten & Peleg, "Fast Distributed
Construction of k-Dominating Sets and Applications" (PODC 1995).

The library implements, at message level on a strict CONGEST-model
simulator:

* the paper's core contribution — small k-dominating sets and their
  radius-k cluster partitions in O(k log* n) rounds on trees
  (Theorem 3.2) and general graphs (Theorem 4.4);
* the headline application — a distributed MST algorithm running in
  O(sqrt(n) log* n + Diam) rounds (Theorem 5.6) built on a new fully
  pipelined convergecast (§5.1);
* every substrate the paper depends on: the synchronous network model,
  Cole–Vishkin symmetry breaking [GPS], controlled-GHS fragment growth
  [GHS/A2], synchroniser α [A1]; and the comparison baselines.

Quickstart::

    from repro import fastdom_graph, fast_mst
    from repro.graphs import grid_graph, assign_unique_weights

    g = assign_unique_weights(grid_graph(16, 16), seed=1)
    dominators, partition, rounds = fastdom_graph(g, k=4)
    mst_edges, staged, diag = fast_mst(g)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
claim-by-claim reproduction record.
"""

from .core import (
    diam_dom,
    dom_partition,
    fastdom_graph,
    fastdom_tree,
    simple_mst_forest,
)
from .mst import fast_mst, ghs_mst, kruskal_mst, pipeline_only_mst, run_pipeline

__version__ = "1.0.0"

__all__ = [
    "diam_dom",
    "dom_partition",
    "fast_mst",
    "fastdom_graph",
    "fastdom_tree",
    "ghs_mst",
    "kruskal_mst",
    "pipeline_only_mst",
    "run_pipeline",
    "simple_mst_forest",
    "__version__",
]
